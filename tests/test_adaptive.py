"""The unified adaptive cost model: forced-vs-auto parity + decision audit.

Contract under test (the invariant ``docs/cost-model.md`` documents): every
adaptive choice — per-pass pool/worker/shard shape under
``parallelism="auto"``, per-rule-group shared-vs-sequential arbitration
under ``batch_strategy="auto"`` — selects *how* a pass executes, never
*what* it computes.  Auto runs must be byte-identical to the forced-choice
oracle in query results, repaired relations (PValue candidates included),
query logs, and merged work-unit totals; and every decision must land on
the report with its alternatives' estimates and the observed cost.
"""

from __future__ import annotations

import pytest

from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.core import AdaptivePlanner, CostCalibration
from repro.core.costmodel import (
    DECISION_BATCH,
    DECISION_POOL,
    DECISION_STRATEGY,
    PASS_DC_CHECK,
)
from repro.datasets import airquality, hospital
from repro.datasets.errors import inject_numeric_errors
from repro.parallel import fork_available
from repro.relation import ColumnType, Relation


# ---------------------------------------------------------------------------
# AdaptivePlanner unit behaviour
# ---------------------------------------------------------------------------


class TestChoosePool:
    def make(self, workers=4, process=True):
        return AdaptivePlanner(
            cpu_count=workers, max_workers=workers, process_pool_available=process
        )

    def test_tiny_scope_stays_serial(self):
        planner = self.make()
        plan, decision = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=100)
        assert plan.kind == "serial" and plan.workers == 1
        assert decision.choice == "serial"
        assert decision.alternatives["serial"] == 100

    def test_mid_scope_takes_thread_pool(self):
        planner = self.make()
        plan, _ = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=20_000)
        assert plan.kind == "thread"
        assert plan.workers > 1

    def test_full_matrix_scale_escalates_to_process_pool(self):
        planner = self.make()
        plan, decision = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=2_000_000)
        assert plan.kind == "process"
        assert plan.workers == 4
        # The modeled process cost beat every thread/serial alternative.
        process_cost = decision.alternatives["process:4"]
        assert process_cost < decision.alternatives["serial"]
        assert process_cost < min(
            v for k, v in decision.alternatives.items() if k.startswith("thread")
        )

    def test_no_fork_never_picks_process(self):
        planner = self.make(process=False)
        plan, decision = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=2_000_000)
        assert plan.kind == "thread"
        assert not any(k.startswith("process") for k in decision.alternatives)

    def test_single_worker_cap_is_always_serial(self):
        planner = self.make(workers=1)
        plan, decision = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=10**9)
        assert plan.kind == "serial"
        assert list(decision.alternatives) == ["serial"]

    def test_num_shards_override_respected(self):
        planner = self.make()
        plan, _ = planner.choose_pool(PASS_DC_CHECK, "t", 50_000, num_shards=7)
        assert plan.parallel and plan.shards == 7

    def test_observe_fills_observed_cost_and_calibrates(self):
        planner = self.make()
        _, decision = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=1000)
        planner.observe(decision, 4000)
        assert decision.observed_cost == 4000
        assert planner.calibration.factor(PASS_DC_CHECK) == pytest.approx(4.0)
        # The next estimate of the same kind is rescaled by the learned ratio.
        _, second = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=1000)
        assert second.alternatives["serial"] == pytest.approx(4000)

    def test_decisions_accumulate_in_order(self):
        planner = self.make()
        mark = planner.mark()
        planner.choose_pool(PASS_DC_CHECK, "a", 10)
        planner.choose_pool(PASS_DC_CHECK, "b", 20)
        since = planner.decisions_since(mark)
        assert [d.table for d in since] == ["a", "b"]
        assert all(d.kind == DECISION_POOL for d in since)


class TestChooseBatchStrategy:
    def test_singleton_group_goes_sequential(self):
        planner = AdaptivePlanner(cpu_count=4)
        decision = planner.choose_batch_strategy(
            "t", members=1, cleaning_members=1, shared_units=50, sequential_units=50
        )
        assert decision.choice == "sequential"

    def test_overlapping_members_share(self):
        planner = AdaptivePlanner(cpu_count=4)
        # Five members whose scopes overlap heavily: union 100 vs sum 500 —
        # the cleaning saved dwarfs the per-member routing re-filter.
        decision = planner.choose_batch_strategy(
            "t", members=5, cleaning_members=5,
            shared_units=100, sequential_units=500, routing_units=500,
        )
        assert decision.choice == "shared"
        assert decision.kind == DECISION_BATCH
        assert decision.alternatives["shared"] < decision.alternatives["sequential"]

    def test_disjoint_members_go_sequential(self):
        planner = AdaptivePlanner(cpu_count=4)
        # Disjoint scopes: union == sum, so sharing saves no cleaning and
        # still pays every member's routing re-filter.
        decision = planner.choose_batch_strategy(
            "t", members=4, cleaning_members=4,
            shared_units=400, sequential_units=400, routing_units=400,
        )
        assert decision.choice == "sequential"
        assert decision.alternatives["sequential"] < decision.alternatives["shared"]

    def test_group_with_nothing_to_clean_shares(self):
        planner = AdaptivePlanner(cpu_count=4)
        # No member needs cleaning: the shared pass is a no-op and members
        # route plainly — never pay per-member cleaning passes for nothing.
        decision = planner.choose_batch_strategy(
            "t", members=3, cleaning_members=0,
            shared_units=0, sequential_units=0, routing_units=120,
        )
        assert decision.choice == "shared"


# ---------------------------------------------------------------------------
# Config surface
# ---------------------------------------------------------------------------


class TestConfig:
    def test_parallelism_auto_accepted(self):
        config = DaisyConfig(parallelism="auto")
        assert config.adaptive_parallelism

    def test_parallelism_rejects_other_strings(self):
        with pytest.raises(ValueError, match="parallelism"):
            DaisyConfig(parallelism="turbo")

    def test_batch_strategy_validated(self):
        DaisyConfig(batch_strategy="auto")
        DaisyConfig(batch_strategy="sequential")
        with pytest.raises(ValueError, match="batch strategy"):
            DaisyConfig(batch_strategy="greedy")

    def test_auto_max_workers_validated(self):
        DaisyConfig(parallelism="auto", auto_max_workers=4)
        with pytest.raises(ValueError, match="auto_max_workers"):
            DaisyConfig(auto_max_workers=-1)

    def test_daisy_kwargs_pass_through(self):
        daisy = Daisy(parallelism="auto", batch_strategy="auto")
        assert daisy.config.adaptive_parallelism
        assert daisy.config.batch_strategy == "auto"


# ---------------------------------------------------------------------------
# Forced-vs-auto parity (hospital + air-quality fixtures)
# ---------------------------------------------------------------------------


def _relation_fingerprint(rel: Relation) -> list[tuple]:
    return [(row.tid, tuple(repr(c) for c in row.values)) for row in rel.rows]


def _run_workload(make_daisy, table: str, queries, batch: bool = False):
    daisy = make_daisy()
    with daisy.connect() as session:
        if batch:
            batch_result = session.execute_batch(list(queries))
            rows = [r.relation.to_plain_rows() for r in batch_result.results]
            report = batch_result.report
        else:
            rows = [session.execute(q).relation.to_plain_rows() for q in queries]
            report = None
        log = [
            (e.errors_fixed, e.extra_tuples, e.result_size)
            for e in session.query_log
        ]
        decisions = list(session.planner.decisions)
    return {
        "rows": rows,
        "log": log,
        "relation": _relation_fingerprint(daisy.table(table)),
        "work": daisy.work_counter(table).as_dict(),
        "pcells": daisy.probabilistic_cells(table),
        "decisions": decisions,
        "report": report,
    }


def _hospital_queries() -> list[str]:
    zips = [10000, 10400, 10800, 11200, 11600]
    out = [
        f"SELECT city, zip FROM hospital WHERE zip >= {lo} AND zip < {hi}"
        for lo, hi in zip(zips, zips[1:])
    ]
    out.append("SELECT hospital_name, zip FROM hospital WHERE city = 'city_3'")
    return out


def _hospital_daisy(**config_kwargs):
    def make() -> Daisy:
        daisy = Daisy(config=DaisyConfig(use_cost_model=False, **config_kwargs))
        fresh = hospital.generate_instance(num_rows=400, seed=11)
        daisy.register_table("hospital", fresh.dirty)
        for fd in fresh.rules:
            daisy.add_rule("hospital", fd)
        return daisy

    return make


def _dc_daisy(**config_kwargs):
    def make() -> Daisy:
        raw = [
            (i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6)) for i in range(240)
        ]
        rel = Relation.from_rows(
            [
                ("orderkey", ColumnType.INT),
                ("extended_price", ColumnType.FLOAT),
                ("discount", ColumnType.FLOAT),
            ],
            raw,
            name="lineorder",
        )
        dirty, _ = inject_numeric_errors(
            rel, "discount", cell_fraction=0.05, magnitude=3.0, seed=7
        )
        dc = DenialConstraint(
            [
                Predicate(0, "extended_price", "<", 1, "extended_price"),
                Predicate(0, "discount", ">", 1, "discount"),
            ],
            name="dc_price_discount",
        )
        daisy = Daisy(config=DaisyConfig(use_cost_model=False, **config_kwargs))
        daisy.register_table("lineorder", dirty)
        daisy.add_rule("lineorder", dc)
        return daisy

    return make


FORCED_CONFIGS = [
    {},  # the serial oracle
    {"parallelism": 2, "pool": "thread"},
    {"parallelism": 4, "pool": "thread", "num_shards": 4},
    pytest.param(
        {"parallelism": 2, "pool": "process"},
        marks=pytest.mark.skipif(not fork_available(), reason="no fork"),
    ),
]


class TestForcedVsAutoParity:
    @pytest.mark.parametrize("forced", FORCED_CONFIGS)
    def test_hospital_fd_workload(self, forced):
        queries = _hospital_queries()
        auto = _run_workload(
            _hospital_daisy(parallelism="auto", auto_max_workers=4),
            "hospital",
            queries,
        )
        oracle = _run_workload(_hospital_daisy(**forced), "hospital", queries)
        assert auto["rows"] == oracle["rows"]
        assert auto["relation"] == oracle["relation"]
        assert auto["work"] == oracle["work"]
        assert auto["log"] == oracle["log"]
        assert auto["pcells"] == oracle["pcells"]

    @pytest.mark.parametrize("forced", FORCED_CONFIGS)
    def test_dc_workload(self, forced):
        queries = [
            "SELECT orderkey, discount FROM lineorder WHERE orderkey < 60",
            "SELECT orderkey, discount FROM lineorder WHERE orderkey >= 120",
            "SELECT orderkey FROM lineorder WHERE extended_price > 500",
        ]
        auto = _run_workload(
            _dc_daisy(parallelism="auto", auto_max_workers=4), "lineorder", queries
        )
        oracle = _run_workload(_dc_daisy(**forced), "lineorder", queries)
        assert auto["rows"] == oracle["rows"]
        assert auto["relation"] == oracle["relation"]
        assert auto["work"] == oracle["work"]
        assert auto["log"] == oracle["log"]
        # The auto run recorded a priced pool decision per DC check.
        dc_decisions = [d for d in auto["decisions"] if d.pass_kind == "dc_check"]
        assert dc_decisions
        assert all(d.observed_cost is not None for d in dc_decisions)

    def test_airquality_batch_auto_parity(self):
        num_states = 8

        def make(**config_kwargs):
            def build() -> Daisy:
                daisy = Daisy(
                    config=DaisyConfig(use_cost_model=False, **config_kwargs)
                )
                fresh = airquality.generate_instance(
                    num_rows=900, num_states=num_states,
                    violation_level="low", seed=17,
                )
                daisy.register_table("airquality", fresh.dirty)
                daisy.add_rule("airquality", fresh.fd)
                return daisy

            return build

        queries = airquality.state_co_queries(num_states)
        auto = _run_workload(
            make(parallelism="auto", auto_max_workers=4, batch_strategy="auto"),
            "airquality",
            queries,
            batch=True,
        )
        # The forced oracle is whichever configuration auto's recorded
        # (uniform) per-group choices correspond to — work units must match
        # it byte-identically, results must match every configuration.
        batch_decisions = [d for d in auto["decisions"] if d.kind == DECISION_BATCH]
        assert batch_decisions
        choices = {d.choice for d in batch_decisions}
        assert len(choices) == 1, "per-state groups should decide uniformly"
        oracle = _run_workload(
            make(batch_strategy=choices.pop()), "airquality", queries, batch=True
        )
        assert auto["rows"] == oracle["rows"]
        assert auto["relation"] == oracle["relation"]
        assert auto["work"] == oracle["work"]
        assert auto["log"] == oracle["log"]


# ---------------------------------------------------------------------------
# Batch arbitration semantics
# ---------------------------------------------------------------------------


class TestBatchArbitration:
    def test_singleton_groups_run_sequential_and_match_forced(self):
        # One query per rule group: auto must demote every group to the
        # sequential path and charge exactly the forced-sequential work.
        queries = [_hospital_queries()[0], _hospital_queries()[-1]]
        auto = _run_workload(
            _hospital_daisy(batch_strategy="auto"), "hospital", queries, batch=True
        )
        forced = _run_workload(
            _hospital_daisy(batch_strategy="sequential"),
            "hospital",
            queries,
            batch=True,
        )
        decisions = [d for d in auto["decisions"] if d.kind == DECISION_BATCH]
        assert decisions and all(d.choice == "sequential" for d in decisions)
        assert auto["rows"] == forced["rows"]
        assert auto["relation"] == forced["relation"]
        assert auto["work"] == forced["work"]
        assert auto["log"] == forced["log"]

    def test_results_identical_across_all_strategies(self):
        queries = _hospital_queries()
        runs = {
            name: _run_workload(
                _hospital_daisy(batch_strategy=name), "hospital", queries, batch=True
            )
            for name in ("shared", "sequential", "auto")
        }
        for name in ("sequential", "auto"):
            assert runs[name]["rows"] == runs["shared"]["rows"]
            assert runs[name]["relation"] == runs["shared"]["relation"]
            assert runs[name]["pcells"] == runs["shared"]["pcells"]

    def test_auto_work_matches_its_chosen_forced_oracle(self):
        queries = _hospital_queries()
        auto = _run_workload(
            _hospital_daisy(batch_strategy="auto"), "hospital", queries, batch=True
        )
        decisions = [d for d in auto["decisions"] if d.kind == DECISION_BATCH]
        assert decisions
        choices = {d.choice for d in decisions}
        # Uniform choices have an exact forced twin; auto must charge its
        # work units byte-identically.
        if choices == {"shared"}:
            oracle_cfg = "shared"
        elif choices == {"sequential"}:
            oracle_cfg = "sequential"
        else:
            pytest.skip("mixed per-group choices have no single forced twin")
        oracle = _run_workload(
            _hospital_daisy(batch_strategy=oracle_cfg), "hospital", queries, batch=True
        )
        assert auto["work"] == oracle["work"]
        assert auto["log"] == oracle["log"]

    def test_group_reports_carry_strategy_and_decision(self):
        queries = _hospital_queries()
        daisy = _hospital_daisy(batch_strategy="auto")()
        with daisy.connect() as session:
            batch = session.execute_batch(queries)
        assert batch.groups
        for group in batch.groups:
            assert group.strategy in ("shared", "sequential")
            assert group.decision is not None
            assert group.decision.observed_cost is not None
            assert set(group.decision.alternatives) == {"shared", "sequential"}
        assert batch.report.decisions_of_kind(DECISION_BATCH)

    def test_forced_strategies_record_no_batch_decisions(self):
        queries = _hospital_queries()
        daisy = _hospital_daisy(batch_strategy="shared")()
        with daisy.connect() as session:
            batch = session.execute_batch(queries)
        assert not batch.report.decisions_of_kind(DECISION_BATCH)
        assert all(g.decision is None for g in batch.groups)


# ---------------------------------------------------------------------------
# Strategy-switch decisions on the workload report
# ---------------------------------------------------------------------------


class TestStrategySwitchDecisions:
    def test_switch_recorded_with_both_projected_costs(self):
        def make() -> Daisy:
            daisy = Daisy(
                config=DaisyConfig(use_cost_model=True, expected_queries=6)
            )
            fresh = hospital.generate_instance(num_rows=400, seed=11)
            daisy.register_table("hospital", fresh.dirty)
            for fd in fresh.rules:
                daisy.add_rule("hospital", fd)
            return daisy

        daisy = make()
        with daisy.connect() as session:
            report = session.execute_workload(_hospital_queries())
        decisions = report.decisions_of_kind(DECISION_STRATEGY)
        assert decisions
        for decision in decisions:
            assert set(decision.alternatives) == {
                "continue_incremental",
                "full_clean_now",
            }
            assert decision.choice in decision.alternatives
        # A switch (if any) carries the observed work of the full clean.
        switched = [d for d in decisions if d.choice == "full_clean_now"]
        if report.switch_query_index is not None:
            assert switched and switched[0].observed_cost is not None
        # The workload behaves exactly as the pre-planner should_switch path.
        daisy2 = make()
        with daisy2.connect() as session:
            report2 = session.execute_workload(_hospital_queries())
        assert report2.switch_query_index == report.switch_query_index


# ---------------------------------------------------------------------------
# Calibration feedback inside a session
# ---------------------------------------------------------------------------


class TestSessionCalibration:
    def test_fd_relax_bucket_learns_within_a_workload(self):
        daisy = _hospital_daisy(parallelism="auto", auto_max_workers=4)()
        with daisy.connect() as session:
            session.execute_workload(_hospital_queries())
            calibration = session.planner.calibration
            assert calibration.samples("fd_relax") > 0
            assert calibration.factor("fd_relax") != 1.0


def test_calibration_shared_across_decision_kinds():
    calibration = CostCalibration()
    planner = AdaptivePlanner(cpu_count=2, calibration=calibration)
    _, decision = planner.choose_pool(PASS_DC_CHECK, "t", raw_units=10)
    planner.observe(decision, 30)
    assert calibration.factor(PASS_DC_CHECK) == pytest.approx(3.0)
    # Other buckets stay untouched.
    assert calibration.factor("fd_relax") == 1.0
