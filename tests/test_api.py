"""Tests for the layered public API: config, sessions, prepared queries,
and rule-sharing batched execution (batch-vs-sequential parity)."""

import dataclasses

import pytest

from repro import BatchResult, Daisy, DaisyConfig, PreparedQuery, Session
from repro.datasets import airquality, hospital
from repro.errors import QueryError, SessionError
from repro.query.ast import ColumnRef, Condition, Query
from repro.relation import ColumnType, Relation


def cities_rel():
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )


def make_engine(**config_kwargs):
    d = Daisy(config=DaisyConfig(use_cost_model=False, **config_kwargs))
    d.register_table("cities", cities_rel())
    d.add_rule("cities", "zip -> city", name="phi")
    return d


def relations_identical(a: Relation, b: Relation) -> bool:
    """Byte-identical: same schema, same rows (tids, cells, PValue
    candidates with exact probabilities and world ids)."""
    if a.schema.names != b.schema.names or len(a) != len(b):
        return False
    return all(ra == rb for ra, rb in zip(a.rows, b.rows))


class TestDaisyConfig:
    def test_defaults_and_replace(self):
        config = DaisyConfig()
        assert config.use_cost_model and config.batch_rule_sharing
        off = config.replace(use_cost_model=False)
        assert not off.use_cost_model and config.use_cost_model

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DaisyConfig().use_cost_model = False

    def test_validation(self):
        with pytest.raises(ValueError):
            DaisyConfig(backend="sparkstore")
        with pytest.raises(ValueError):
            DaisyConfig(expected_queries=0)
        with pytest.raises(ValueError):
            DaisyConfig(dc_error_threshold=1.5)


class TestSession:
    def test_connect_and_context_manager(self):
        d = make_engine()
        with d.connect() as session:
            assert isinstance(session, Session)
            result = session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            assert len(result) == 3
        assert session.closed
        with pytest.raises(SessionError):
            session.execute("SELECT zip FROM cities WHERE city = 'New York'")

    def test_per_session_query_logs(self):
        d = make_engine()
        s1, s2 = d.connect(), d.connect()
        s1.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        assert len(s1.query_log) == 1
        assert s2.query_log == []

    def test_session_config_override(self):
        d = Daisy()  # cost model on by default
        d.register_table("cities", cities_rel())
        d.add_rule("cities", "zip -> city", name="phi")
        session = d.connect(d.config.replace(use_cost_model=False))
        assert not session.config.use_cost_model
        assert d.config.use_cost_model

    def test_backend_override_rejected(self):
        d = make_engine()  # columnar engine
        with pytest.raises(ValueError, match="backend"):
            d.connect(d.config.replace(backend="rowstore"))

    def test_ast_query_logs_real_sql(self):
        d = make_engine()
        session = d.connect()
        query = Query(
            tables=["cities"],
            projection=[ColumnRef("zip")],
            conditions=[Condition(ColumnRef("city"), "=", "Los Angeles")],
        )
        session.execute(query)
        assert session.query_log[-1].sql == (
            "SELECT zip FROM cities WHERE city = 'Los Angeles'"
        )
        assert "<ast>" not in session.query_log[-1].sql

    def test_introspection_delegates_to_shared_state(self):
        d = make_engine()
        session = d.connect()
        session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        assert session.probabilistic_cells("cities") > 0
        assert session.table("cities") is d.table("cities")
        assert session.total_work() == d.total_work() > 0


class TestPreparedQuery:
    def test_reexecution_parity_without_params(self):
        sql = "SELECT zip FROM cities WHERE city = 'Los Angeles'"
        d1, d2 = make_engine(), make_engine()
        s1, s2 = d1.connect(), d2.connect()
        prepared = s1.prepare(sql)
        assert isinstance(prepared, PreparedQuery)
        first = prepared.execute()
        again = prepared.execute()
        plain_first = s2.execute(sql)
        plain_again = s2.execute(sql)
        assert relations_identical(first.relation, plain_first.relation)
        assert relations_identical(again.relation, plain_again.relation)
        assert relations_identical(d1.table("cities"), d2.table("cities"))

    def test_parameter_binding_matches_literals(self):
        d1, d2 = make_engine(), make_engine()
        s1, s2 = d1.connect(), d2.connect()
        prepared = s1.prepare("SELECT zip FROM cities WHERE city = ?")
        assert prepared.param_count == 1
        for value in ("Los Angeles", "New York", "San Francisco"):
            bound = prepared.execute(value)
            literal = s2.execute(f"SELECT zip FROM cities WHERE city = '{value}'")
            assert relations_identical(bound.relation, literal.relation)
        assert relations_identical(d1.table("cities"), d2.table("cities"))
        # The log records the bound SQL, not the placeholder.
        assert s1.query_log[-1].sql == (
            "SELECT zip FROM cities WHERE city = 'San Francisco'"
        )

    def test_range_parameters(self):
        d = make_engine()
        session = d.connect()
        prepared = session.prepare(
            "SELECT city FROM cities WHERE zip >= ? AND zip < ?"
        )
        assert prepared.param_count == 2
        assert len(prepared.execute(0, 99999)) == 5

    def test_wrong_arity_raises(self):
        session = make_engine().connect()
        prepared = session.prepare("SELECT zip FROM cities WHERE city = ?")
        with pytest.raises(QueryError):
            prepared.execute()
        with pytest.raises(QueryError):
            prepared.execute("Los Angeles", "New York")

    def test_unbound_execution_rejected(self):
        session = make_engine().connect()
        with pytest.raises(QueryError):
            session.execute("SELECT zip FROM cities WHERE city = ?")

    def test_explain_shows_cleaning_without_replanning(self):
        session = make_engine().connect()
        prepared = session.prepare("SELECT zip FROM cities WHERE city = ?")
        assert "CleanSigma" in prepared.explain()
        assert prepared.explain() == prepared.plan.pretty()

    def test_rules_added_after_prepare_are_picked_up(self):
        d = Daisy(config=DaisyConfig(use_cost_model=False))
        d.register_table("cities", cities_rel())
        session = d.connect()
        prepared = session.prepare("SELECT zip FROM cities WHERE city = ?")
        assert "CleanSigma" not in prepared.explain()
        d.add_rule("cities", "zip -> city", name="phi")
        # The stale plan is rebuilt: the new rule's cleaning operator runs.
        assert "CleanSigma" in prepared.explain()
        result = prepared.execute("Los Angeles")
        assert len(result) == 3  # includes the repaired row
        assert d.probabilistic_cells("cities") > 0

    def test_quote_containing_parameter_logs_parseable_sql(self):
        from repro.query.sql import parse_sql

        d = Daisy(config=DaisyConfig(use_cost_model=False))
        d.register_table(
            "t",
            Relation.from_rows(
                [("name", ColumnType.STRING)], [("O'Brien",), ("Smith",)]
            ),
        )
        session = d.connect()
        prepared = session.prepare("SELECT name FROM t WHERE name = ?")
        result = prepared.execute("O'Brien")
        assert len(result) == 1
        logged = session.query_log[-1].sql
        assert parse_sql(logged).conditions[0].value == "O'Brien"


def _hospital_setup():
    """Hospital fixture + per-city workload (each query touches ϕ1)."""
    inst = hospital.generate_instance(num_rows=300, seed=1)
    d = Daisy(config=DaisyConfig(use_cost_model=False))
    d.register_table("hospital", inst.dirty)
    for fd in inst.rules:
        d.add_rule("hospital", fd)
    cities = sorted(
        {v for v in inst.master.distinct_values("city") if isinstance(v, str)}
    )
    queries = [
        f"SELECT provider_id, city FROM hospital WHERE city = '{c}'"
        for c in cities
    ]
    return d, queries


def _airquality_setup():
    """Air-quality fixture + the per-state analyst workload (aggregates)."""
    inst = airquality.generate_instance(
        600, num_states=10, violation_level="low", seed=1
    )
    d = Daisy(config=DaisyConfig(use_cost_model=False))
    d.register_table("airquality", inst.dirty)
    d.add_rule("airquality", inst.fd)
    queries = [
        "SELECT year, AVG(co_mean) AS avg_co FROM airquality "
        f"WHERE state_code = {s} GROUP BY year"
        for s in range(10)
    ]
    return d, queries


class TestExecuteBatch:
    @pytest.mark.parametrize("setup", [_hospital_setup, _airquality_setup])
    def test_batch_matches_sequential_and_saves_work(self, setup):
        d_seq, queries = setup()
        session_seq = d_seq.connect()
        sequential = [session_seq.execute(q) for q in queries]
        seq_work = d_seq.total_work()

        d_batch, queries = setup()
        session_batch = d_batch.connect()
        work_before = d_batch.total_work()  # rule registration precompute
        batch = session_batch.execute_batch(queries)
        batch_work = d_batch.total_work()

        assert isinstance(batch, BatchResult)
        assert len(batch) == len(sequential)
        for batched, plain in zip(batch, sequential):
            assert relations_identical(batched.relation, plain.relation)
        # The in-place repaired datasets end up byte-identical too.
        table = list(d_seq.states)[0]
        assert relations_identical(d_batch.table(table), d_seq.table(table))
        # One shared pass per rule group beats per-query detection.
        assert batch_work < seq_work
        assert batch.groups, "expected at least one shared rule group"
        assert batch.report.total_work_units == batch_work - work_before

    def test_rule_groups_cover_same_rule_queries(self):
        d, queries = _airquality_setup()
        batch = d.connect().execute_batch(queries)
        assert len(batch.groups) == 1
        group = batch.groups[0]
        assert group.query_indices == list(range(len(queries)))
        assert group.table == "airquality"
        assert group.rule_keys == ("phi_county",)

    def test_batch_without_sharing_matches_sequential(self):
        d_seq, queries = _airquality_setup()
        sequential = [d_seq.connect().execute(q) for q in queries]

        d_off, queries = _airquality_setup()
        session = d_off.connect(d_off.config.replace(batch_rule_sharing=False))
        batch = session.execute_batch(queries)
        assert batch.groups == []
        for batched, plain in zip(batch, sequential):
            assert relations_identical(batched.relation, plain.relation)

    def test_batch_accepts_prepared_and_ast_queries(self):
        d = make_engine()
        session = d.connect()
        prepared = session.prepare(
            "SELECT zip FROM cities WHERE city = 'Los Angeles'"
        )
        ast_query = Query(
            tables=["cities"],
            projection=[ColumnRef("city")],
            conditions=[Condition(ColumnRef("zip"), "=", 10001)],
        )
        batch = session.execute_batch([prepared, ast_query, "SELECT * FROM cities"])
        assert len(batch) == 3
        assert len(batch[0]) == 3  # repaired row joins the LA answer
        assert batch.report.entries[1].sql == (
            "SELECT city FROM cities WHERE zip = 10001"
        )

    def test_batch_rejects_unbound_prepared(self):
        session = make_engine().connect()
        prepared = session.prepare("SELECT zip FROM cities WHERE city = ?")
        with pytest.raises(QueryError):
            session.execute_batch([prepared])

    def test_batch_rejects_unbound_sql_before_any_cleaning(self):
        d = make_engine()
        session = d.connect()
        with pytest.raises(QueryError):
            session.execute_batch(
                [
                    "SELECT city FROM cities WHERE zip = ?",
                    "SELECT city FROM cities WHERE zip = 10001",
                ]
            )
        # The batch failed up front: no shared pass ran, nothing mutated.
        assert d.probabilistic_cells("cities") == 0
        assert session.query_log == []

    def test_rule_free_queries_take_sequential_path(self):
        d = Daisy(config=DaisyConfig(use_cost_model=False))
        d.register_table(
            "t",
            Relation.from_rows(
                [("a", ColumnType.INT), ("b", ColumnType.INT)],
                [(1, 10), (2, 20)],
            ),
        )
        batch = d.connect().execute_batch(
            ["SELECT a FROM t WHERE b >= 10", "SELECT b FROM t WHERE a = 2"]
        )
        assert batch.groups == []
        assert [len(r) for r in batch] == [2, 1]

    def test_batch_entries_feed_session_log(self):
        d, queries = _airquality_setup()
        session = d.connect()
        batch = session.execute_batch(queries)
        assert len(session.query_log) == len(queries)
        assert [e.sql for e in batch.report.entries] == list(queries)

    def test_batch_entry_totals_include_shared_passes(self):
        d, queries = _airquality_setup()
        work_before = d.total_work()
        batch = d.connect().execute_batch(queries)
        # Shared-pass cost is attributed to each group's first member, so
        # the per-entry tallies reconcile with the batch totals.
        assert sum(e.work_units for e in batch.report.entries) == (
            d.total_work() - work_before
        )
        assert sum(e.errors_fixed for e in batch.report.entries) == sum(
            g.report.errors_fixed for g in batch.groups
        ) > 0


class TestCostModelState:
    def test_unrelated_registration_keeps_observations(self):
        d = Daisy()  # cost model on
        d.register_table("cities", cities_rel())
        d.add_rule("cities", "zip -> city", name="phi")
        session = d.connect()
        session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        model = session.cost_models["cities"]
        assert model is not None and model.observations
        # Registering an unrelated table must not reset cities' model.
        d.register_table(
            "other",
            Relation.from_rows([("a", ColumnType.INT)], [(1,)], name="other"),
        )
        assert session._cost_model("cities") is model
        # A new rule on cities itself still triggers the rebuild.
        d.add_rule("cities", "city -> zip", name="phi2")
        assert session._cost_model("cities") is not model

    def test_cost_models_shim_populated_after_add_rule(self):
        d = Daisy(config=DaisyConfig(use_cost_model=False))
        d.register_table("cities", cities_rel())
        d.add_rule("cities", "zip -> city", name="phi")
        # Old contract: inspectable right after registration, no query run.
        model = d.cost_models["cities"]
        assert model.dataset_size == 5


class TestPlanCache:
    """The session's cross-query plan cache (prepare's benefit for ad-hoc
    execute calls): structure-keyed, constants erased, invalidated by rule
    registration."""

    def test_same_structure_different_constants_hits(self):
        d = make_engine()
        with d.connect() as session:
            r1 = session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            assert (session.plan_cache_hits, session.plan_cache_misses) == (0, 1)
            r2 = session.execute("SELECT zip FROM cities WHERE city = 'New York'")
            assert (session.plan_cache_hits, session.plan_cache_misses) == (1, 1)
            assert len(r1) == 3 and len(r2) == 2  # cleaning relaxed tid 3 in

    def test_cached_plan_results_match_uncached_session(self):
        queries = [
            "SELECT zip FROM cities WHERE city = 'Los Angeles'",
            "SELECT zip FROM cities WHERE city = 'San Francisco'",
            "SELECT zip FROM cities WHERE city = 'New York'",
        ]
        d_cached, d_uncached = make_engine(), make_engine()
        with d_cached.connect() as cached, d_uncached.connect() as uncached:
            for sql in queries:
                via_cache = cached.execute(sql)
                uncached._plan_cache.clear()  # force replanning every time
                direct = uncached.execute(sql)
                assert relations_identical(via_cache.relation, direct.relation)
            assert cached.plan_cache_hits == 2
            assert uncached.plan_cache_hits == 0
        assert relations_identical(
            d_cached.table("cities"), d_uncached.table("cities")
        )

    def test_different_structure_misses(self):
        d = make_engine()
        with d.connect() as session:
            session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            session.execute("SELECT city FROM cities WHERE zip = 9001")
            session.execute("SELECT zip FROM cities WHERE city != 'Los Angeles'")
            assert session.plan_cache_hits == 0
            assert session.plan_cache_misses == 3

    def test_rule_registration_invalidates(self):
        d = Daisy(config=DaisyConfig(use_cost_model=False))
        d.register_table("cities", cities_rel())
        with d.connect() as session:
            session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            d.add_rule("cities", "zip -> city", name="phi")
            # Same structure, but the rules epoch moved: the stale rule-free
            # plan must not be reused — the new plan carries the clean node.
            result = session.execute(
                "SELECT zip FROM cities WHERE city = 'Los Angeles'"
            )
            assert session.plan_cache_hits == 0
            assert session.plan_cache_misses == 2
            assert result.report.errors_fixed > 0

    def test_ast_queries_share_cache_with_sql(self):
        d = make_engine()
        query = Query(
            tables=["cities"],
            projection=[ColumnRef("zip")],
            conditions=[Condition(ColumnRef("city"), "=", "New York")],
        )
        with d.connect() as session:
            session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            session.execute(query)
            assert session.plan_cache_hits == 1


class TestPlanCacheAliasing:
    """Constants-erased keys must not alias structurally different queries
    — and where aliasing is intentional (constants only), a cache hit must
    never replay the earlier query's constants."""

    @staticmethod
    def _key(query):
        from repro.api.session import _plan_structure_key

        return _plan_structure_key(query)

    def _zip_query(self, value):
        return Query(
            tables=["cities"],
            projection=[ColumnRef("city")],
            conditions=[Condition(ColumnRef("zip"), "=", value)],
        )

    def test_parameter_arity_does_not_alias(self):
        from repro.query.ast import Parameter

        one_param_twice = Query(
            tables=["cities"],
            projection=[ColumnRef("city")],
            conditions=[
                Condition(ColumnRef("zip"), ">=", Parameter(0)),
                Condition(ColumnRef("zip"), "<=", Parameter(0)),
            ],
        )
        two_params = Query(
            tables=["cities"],
            projection=[ColumnRef("city")],
            conditions=[
                Condition(ColumnRef("zip"), ">=", Parameter(0)),
                Condition(ColumnRef("zip"), "<=", Parameter(1)),
            ],
        )
        assert self._key(one_param_twice) != self._key(two_params)

    def test_parameter_vs_constant_does_not_alias(self):
        from repro.query.ast import Parameter

        with_param = self._zip_query(Parameter(0))
        with_constant = self._zip_query(9001)
        assert self._key(with_param) != self._key(with_constant)

    def test_cross_type_constants_alias_safely(self):
        """1 vs 1.0 vs True hash equal; erased constants must alias to the
        *same opaque marker*, and the shared plan must serve each query its
        own constants."""
        assert self._key(self._zip_query(9001)) == self._key(
            self._zip_query(9001.0)
        )
        assert self._key(self._zip_query(9001)) == self._key(
            self._zip_query(True)
        )
        d_cached, d_cold = make_engine(), make_engine()
        with d_cached.connect() as cached, d_cold.connect() as cold:
            by_int = cached.execute(self._zip_query(10001))
            by_float = cached.execute(self._zip_query(9001.0))
            assert cached.plan_cache_hits == 1  # aliased on purpose
            # The hit served the *new* constants, not the cached query's:
            # results match a session that re-plans every query.
            cold_int = cold.execute(self._zip_query(10001))
            cold._plan_cache.clear()
            cold_float = cold.execute(self._zip_query(9001.0))
            assert relations_identical(by_int.relation, cold_int.relation)
            assert relations_identical(by_float.relation, cold_float.relation)
            assert by_int.plain_rows() != by_float.plain_rows()

    def test_cache_hit_never_replays_cached_constants(self):
        d = make_engine()
        with d.connect() as session:
            la = session.execute(
                "SELECT zip FROM cities WHERE city = 'Los Angeles'"
            )
            ny = session.execute(
                "SELECT zip FROM cities WHERE city = 'New York'"
            )
            assert session.plan_cache_hits == 1
            assert la.plain_rows() != ny.plain_rows()
            assert all(z == (10001,) for z in ny.plain_rows())


class TestSqlLiteralRoundTrip:
    """Query.to_sql() renderings must parse back to equal constants."""

    @staticmethod
    def _round_trip(value):
        from repro.query.sql import parse_sql

        query = Query(
            tables=["t"],
            projection=[ColumnRef("a")],
            conditions=[Condition(ColumnRef("a"), "=", value)],
        )
        back = parse_sql(query.to_sql())
        got = back.conditions[0].value
        # Idempotence: rendering the parsed query again is stable.
        assert parse_sql(back.to_sql()).conditions[0].value == got
        return got

    @pytest.mark.parametrize(
        "value",
        [
            "plain",
            "o'brien",                  # single quote -> doubled-quote escape
            'he said "hi"',             # double quote inside single quotes
            "both \" and ' quotes",     # previously unparseable
            "",                         # empty string
            0,
            -17,
            3.25,
            -0.5,
            1e20,                       # repr() uses exponent notation
            2.5e-07,
            True,
            False,
            None,                       # renders as NULL
        ],
    )
    def test_literal_round_trips(self, value):
        got = self._round_trip(value)
        assert got == value
        assert type(got) is type(value)

    def test_non_finite_floats_are_rejected(self):
        import math

        query = Query(
            tables=["t"],
            select_star=True,
            conditions=[Condition(ColumnRef("a"), "<", math.inf)],
        )
        with pytest.raises(QueryError, match="non-finite"):
            query.to_sql()

    def test_unrenderable_types_are_rejected(self):
        query = Query(
            tables=["t"],
            select_star=True,
            conditions=[Condition(ColumnRef("a"), "=", object())],
        )
        with pytest.raises(QueryError, match="cannot render"):
            query.to_sql()

    def test_query_log_records_parseable_sql_for_ast_queries(self):
        from repro.query.sql import parse_sql

        d = make_engine()
        query = Query(
            tables=["cities"],
            projection=[ColumnRef("zip")],
            conditions=[Condition(ColumnRef("city"), "=", "L'Aquila")],
        )
        with d.connect() as session:
            session.execute(query)
            sql = session.query_log[-1].sql
        assert parse_sql(sql).conditions[0].value == "L'Aquila"

    def test_unrenderable_constants_do_not_gate_execution(self):
        """to_sql() raising must never block the execute path: the query
        log falls back to a marker and the query still runs."""
        from decimal import Decimal

        rel = Relation.from_rows(
            [("a", ColumnType.FLOAT)], [(1.5,), (2.5,)], name="t"
        )
        d = Daisy(config=DaisyConfig(use_cost_model=False))
        d.register_table("t", rel)
        query = Query(
            tables=["t"],
            select_star=True,
            conditions=[Condition(ColumnRef("a"), "=", Decimal("1.5"))],
        )
        with d.connect() as session:
            result = session.execute(query)
            assert result.plain_rows() == [(1.5,)]
            assert "unrenderable" in session.query_log[-1].sql

    def test_prepared_binding_renders_parseable_log_sql(self):
        from repro.query.sql import parse_sql

        d = make_engine()
        with d.connect() as session:
            prepared = session.prepare("SELECT zip FROM cities WHERE city = ?")
            prepared.execute("O'Fallon")
            sql = session.query_log[-1].sql
        assert parse_sql(sql).conditions[0].value == "O'Fallon"


class TestDeprecationShims:
    def test_execute_warns_and_works(self):
        d = make_engine()
        with pytest.warns(DeprecationWarning, match="Daisy.execute is deprecated"):
            result = d.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        assert len(result) == 3
        assert len(d.query_log) == 1

    def test_execute_workload_warns_and_works(self):
        d = make_engine()
        queries = [
            "SELECT zip FROM cities WHERE city = 'Los Angeles'",
            "SELECT city FROM cities WHERE zip = 9001",
        ]
        with pytest.warns(DeprecationWarning, match="execute_workload is deprecated"):
            report = d.execute_workload(queries)
        assert len(report.entries) == 2
        assert report.total_work_units > 0

    def test_shims_match_session_results(self):
        sql = "SELECT zip FROM cities WHERE city = 'Los Angeles'"
        d_shim, d_session = make_engine(), make_engine()
        with pytest.warns(DeprecationWarning):
            shim_result = d_shim.execute(sql)
        session_result = d_session.connect().execute(sql)
        assert relations_identical(shim_result.relation, session_result.relation)
        assert relations_identical(d_shim.table("cities"), d_session.table("cities"))
