"""Columnar/row-store backend parity.

The columnar backend must be an *exact* drop-in: identical violation sets
from the detectors, identical query results, and identical repaired
relations (candidate values, probabilities, and candidate order included —
asserted via ``repr``) across the hospital, air-quality, and SSB fixtures.
The row-store backend is the semantics oracle.
"""

from __future__ import annotations

import pytest

from repro import Daisy
from repro.baselines import OfflineCleaner
from repro.constraints import DenialConstraint, Predicate
from repro.datasets import airquality, hospital, ssb, workloads
from repro.detection.fd_detector import detect_fd_violations
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.relation import BACKENDS, ColumnType, Relation


def rows_repr(relation: Relation) -> list[str]:
    return [repr(row) for row in relation.rows]


def run_pair(make_inputs, queries, table):
    """Execute the workload on both backends; return (columnar, rowstore)."""
    engines = {}
    for backend in BACKENDS:
        relation, rules = make_inputs()
        daisy = Daisy(use_cost_model=False, backend=backend)
        daisy.register_table(table, relation)
        for rule in rules:
            daisy.add_rule(table, rule)
        engines[backend] = daisy
    outputs = {b: [] for b in BACKENDS}
    for sql in queries:
        for backend, daisy in engines.items():
            outputs[backend].append(daisy.execute(sql))
    return engines, outputs


def assert_identical(engines, outputs, table):
    columnar, rowstore = outputs["columnar"], outputs["rowstore"]
    for i, (a, b) in enumerate(zip(columnar, rowstore)):
        assert rows_repr(a.relation) == rows_repr(b.relation), f"query {i}"
        assert a.report.errors_fixed == b.report.errors_fixed, f"query {i}"
        assert a.report.extra_tuples == b.report.extra_tuples, f"query {i}"
    assert rows_repr(engines["columnar"].table(table)) == rows_repr(
        engines["rowstore"].table(table)
    )


class TestHospitalParity:
    def test_workload_and_final_relation_identical(self):
        def make_inputs():
            instance = hospital.generate_instance(num_rows=300, seed=11)
            return instance.dirty, instance.rules

        queries = [
            "SELECT zip FROM hospital WHERE city = 'City001'",
            "SELECT city FROM hospital WHERE zip = 10003",
            "SELECT hospital_name, zip FROM hospital WHERE zip >= 10000 AND zip < 10008",
            "SELECT phone FROM hospital WHERE zip = 10001",
            "SELECT * FROM hospital WHERE provider_id < 40",
        ]
        engines, outputs = run_pair(make_inputs, queries, "hospital")
        assert_identical(engines, outputs, "hospital")

    def test_fd_detection_identical_violation_sets(self):
        instance = hospital.generate_instance(num_rows=300, seed=11)
        for fd in instance.rules:
            rowstore = detect_fd_violations(instance.dirty, fd)
            columnar = detect_fd_violations(
                instance.dirty, fd, view=instance.dirty.column_view()
            )
            assert rowstore.violating_tids() == columnar.violating_tids()
            assert rowstore.violation_pairs() == columnar.violation_pairs()
            assert [g.lhs_key for g in rowstore.groups] == [
                g.lhs_key for g in columnar.groups
            ]


class TestAirQualityParity:
    def test_workload_and_final_relation_identical(self):
        def make_inputs():
            instance = airquality.generate_instance(
                num_rows=600, num_states=10, violation_level="high", seed=17
            )
            return instance.dirty, [instance.fd]

        queries = airquality.state_co_queries(num_states=10)
        engines, outputs = run_pair(make_inputs, queries, "airquality")
        assert_identical(engines, outputs, "airquality")


class TestSsbParity:
    def test_fd_workload_identical(self):
        def make_inputs():
            dirty, fd, _ = ssb.dirty_lineorder(600, 60, 20, seed=101)
            return dirty, [fd]

        queries = workloads.range_queries(
            "lineorder", "suppkey", 20, 8, projection="orderkey, suppkey"
        )
        engines, outputs = run_pair(make_inputs, queries, "lineorder")
        assert_identical(engines, outputs, "lineorder")

    def test_offline_cleaner_identical(self):
        results = {}
        for backend in BACKENDS:
            dirty, fd, _ = ssb.dirty_lineorder(500, 50, 20, seed=103)
            cleaned, report = OfflineCleaner(backend=backend).clean(dirty, [fd])
            results[backend] = (rows_repr(cleaned), report.violations_found)
        assert results["columnar"][0] == results["rowstore"][0]
        assert results["columnar"][1] == results["rowstore"][1]


def price_discount_dc() -> DenialConstraint:
    return DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )


class TestThetaJoinParity:
    def make_relation(self, n=300, seed=7):
        import random

        rng = random.Random(seed)
        raw = []
        for i in range(n):
            price = 100.0 + i * 10.0
            discount = round(0.01 + i * 0.0001, 6)
            if rng.random() < 0.1:
                discount = round(discount + rng.uniform(-0.02, 0.02), 6)
            raw.append((i, price, discount))
        return Relation.from_rows(
            [
                ("orderkey", ColumnType.INT),
                ("extended_price", ColumnType.FLOAT),
                ("discount", ColumnType.FLOAT),
            ],
            raw,
            name="lineorder",
        )

    def test_check_full_identical_ordered_lists(self):
        relation = self.make_relation()
        dc = price_discount_dc()
        columnar = ThetaJoinMatrix(relation, dc, backend="columnar").check_full()
        rowstore = ThetaJoinMatrix(relation, dc, backend="rowstore").check_full()
        assert [(v.t1, v.t2) for v in columnar] == [(v.t1, v.t2) for v in rowstore]
        assert columnar  # the fixture does produce violations

    def test_check_partial_identical(self):
        relation = self.make_relation()
        dc = price_discount_dc()
        mc = ThetaJoinMatrix(relation, dc, backend="columnar")
        mr = ThetaJoinMatrix(relation, dc, backend="rowstore")
        for tids in ([0, 1, 2], [150, 151], list(range(250, 300))):
            vc = mc.check_partial(tids)
            vr = mr.check_partial(tids)
            assert [(v.t1, v.t2) for v in vc] == [(v.t1, v.t2) for v in vr]
        assert mc.checked_cells == mr.checked_cells
        assert mc.support() == mr.support()

    def test_dc_workload_identical(self):
        def make_inputs():
            return self.make_relation(seed=9), [price_discount_dc()]

        queries = workloads.range_queries(
            "lineorder", "extended_price", 3100, 6,
            projection="orderkey, extended_price, discount",
        )
        engines, outputs = run_pair(make_inputs, queries, "lineorder")
        assert_identical(engines, outputs, "lineorder")

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "=", "!="])
    def test_every_driving_operator_identical(self, op):
        relation = self.make_relation(n=120, seed=7 + "< <= > >= = !=".split().index(op))
        dc = DenialConstraint(
            [
                Predicate(0, "extended_price", op, 1, "extended_price"),
                Predicate(0, "discount", ">", 1, "discount"),
            ],
            name=f"dc_{op}",
        )
        columnar = ThetaJoinMatrix(relation, dc, backend="columnar").check_full()
        rowstore = ThetaJoinMatrix(relation, dc, backend="rowstore").check_full()
        assert [(v.t1, v.t2) for v in columnar] == [(v.t1, v.t2) for v in rowstore]


class TestCostModelParity:
    def test_strategy_switch_behaves_identically(self):
        results = {}
        for backend in BACKENDS:
            dirty, fd, _ = ssb.dirty_lineorder(
                600, 60, 20, error_group_fraction=0.8, seed=107
            )
            daisy = Daisy(use_cost_model=True, expected_queries=12, backend=backend)
            daisy.register_table("lineorder", dirty)
            daisy.add_rule("lineorder", fd)
            queries = workloads.range_queries(
                "lineorder", "suppkey", 20, 12, projection="orderkey, suppkey"
            )
            report = daisy.execute_workload(queries)
            results[backend] = (
                rows_repr(daisy.table("lineorder")),
                report.switch_query_index,
                [e.errors_fixed for e in report.entries],
            )
        assert results["columnar"] == results["rowstore"]
