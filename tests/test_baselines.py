"""Tests for the offline and HoloClean-like baselines."""


from repro.baselines import (
    HoloCleanLike,
    OfflineCleaner,
    domains_from_daisy,
    most_probable_repairs,
    offline_then_query,
)
from repro.constraints import DenialConstraint, FunctionalDependency, Predicate
from repro.probabilistic import PValue
from repro.relation import ColumnType, Relation


def cities_rel():
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )


class TestOfflineCleaner:
    def test_repairs_all_groups(self):
        fd = FunctionalDependency("zip", "city", name="phi")
        cleaned, report = OfflineCleaner().clean(cities_rel(), [fd])
        assert report.groups_repaired == 2
        assert isinstance(cleaned.row_by_tid(0).values[1], PValue)
        assert isinstance(cleaned.row_by_tid(4).values[1], PValue)

    def test_same_candidates_as_daisy_full_clean(self):
        from repro import Daisy

        fd = FunctionalDependency("zip", "city", name="phi")
        cleaned, _ = OfflineCleaner().clean(cities_rel(), [fd])

        d = Daisy()
        d.register_table("cities", cities_rel())
        d.add_rule("cities", fd)
        d.clean_table("cities")
        daisy_rel = d.table("cities")

        for tid in range(5):
            o = cleaned.row_by_tid(tid).values[1]
            m = daisy_rel.row_by_tid(tid).values[1]
            o_vals = set(o.concrete_values()) if isinstance(o, PValue) else {o}
            m_vals = set(m.concrete_values()) if isinstance(m, PValue) else {m}
            assert o_vals == m_vals

    def test_dc_cleaning(self, salary_tax_relation):
        dc = DenialConstraint(
            [
                Predicate(0, "salary", "<", 1, "salary"),
                Predicate(0, "tax", ">", 1, "tax"),
            ],
            name="dc",
        )
        cleaned, report = OfflineCleaner().clean(salary_tax_relation, [dc])
        assert report.violations_found == 1
        assert cleaned.probabilistic_cell_count() > 0

    def test_work_charged_per_group_scan(self):
        fd = FunctionalDependency("zip", "city", name="phi")
        _, report = OfflineCleaner().clean(cities_rel(), [fd])
        # Detection (n) + 2 group scans (2n) + update (n): at least 4n scans.
        assert report.work.tuples_scanned >= 4 * 5

    def test_offline_then_query(self):
        fd = FunctionalDependency("zip", "city", name="phi")
        cleaned, report, total = offline_then_query(
            cities_rel(),
            [fd],
            ["SELECT zip FROM data WHERE city = 'Los Angeles'"],
        )
        assert total >= report.elapsed_seconds
        assert cleaned.probabilistic_cell_count() > 0

    def test_clean_relation_noop(self):
        fd = FunctionalDependency("zip", "city")
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "A"), (2, "B")],
        )
        cleaned, report = OfflineCleaner().clean(rel, [fd])
        assert report.groups_repaired == 0
        assert cleaned.probabilistic_cell_count() == 0


class TestHoloCleanLike:
    def test_dirty_cells_detected(self):
        fd = FunctionalDependency("zip", "city", name="phi")
        hc = HoloCleanLike()
        cells = hc.dirty_cells(cities_rel(), [fd])
        assert (0, "city") in cells and (1, "city") in cells

    def test_domains_contain_plausible_values(self):
        fd = FunctionalDependency("zip", "city", name="phi")
        hc = HoloCleanLike()
        rel = cities_rel()
        cells = hc.dirty_cells(rel, [fd])
        domains = hc.generate_domains(rel, cells)
        assert "Los Angeles" in domains[(1, "city")]

    def test_repair_end_to_end(self):
        fd = FunctionalDependency("zip", "city", name="phi")
        hc = HoloCleanLike()
        repaired, repairs, report = hc.repair(cities_rel(), [fd])
        assert report.dirty_cells > 0
        # Majority voting should fix SF -> LA for tuple 1.
        assert repairs[(1, "city")] == "Los Angeles"

    def test_domain_pruning_limits_size(self):
        fd = FunctionalDependency("zip", "city", name="phi")
        hc = HoloCleanLike(domain_prune_k=1)
        rel = cities_rel()
        cells = hc.dirty_cells(rel, [fd])
        domains = hc.generate_domains(rel, cells)
        assert all(len(d) <= 2 for d in domains.values())  # k + current value

    def test_external_domains_daisyh(self):
        """DaisyH: HoloClean inference over Daisy's candidate domains."""
        from repro import Daisy

        fd = FunctionalDependency("zip", "city", name="phi")
        d = Daisy()
        d.register_table("cities", cities_rel())
        d.add_rule("cities", fd)
        d.clean_table("cities")
        domains = domains_from_daisy(d.table("cities"))
        assert domains  # probabilistic cells produced domains

        hc = HoloCleanLike()
        repaired, repairs, _ = hc.repair(
            cities_rel(), [fd], external_domains=domains
        )
        assert repairs[(1, "city")] == "Los Angeles"

    def test_most_probable_repairs(self):
        from repro import Daisy

        d = Daisy()
        d.register_table("cities", cities_rel())
        d.add_rule("cities", "zip -> city", name="phi")
        d.clean_table("cities")
        repairs = most_probable_repairs(d.table("cities"))
        assert repairs  # every probabilistic cell contributes
        assert repairs[(0, "city")] == "Los Angeles"


class TestAccuracyMetrics:
    def test_precision_recall(self):
        from repro.metrics import evaluate_repairs

        dirty = cities_rel()
        ground_truth = {(1, "city"): "Los Angeles", (3, "city"): "New York"}
        repairs = {
            (1, "city"): "Los Angeles",  # correct
            (3, "city"): "San Diego",    # wrong value
            (4, "city"): "New York",     # no-op (already NY) — not an update
        }
        report = evaluate_repairs(repairs, dirty, ground_truth)
        assert report.total_updates == 2
        assert report.correct_updates == 1
        assert report.precision == 0.5
        assert report.recall == 0.5

    def test_evaluate_relation(self):
        from repro.metrics import evaluate_relation

        dirty = cities_rel()
        repaired = dirty.update_cells({(1, "city"): "Los Angeles"})
        report = evaluate_relation(
            repaired, dirty, {(1, "city"): "Los Angeles"}, attrs=["city"]
        )
        assert report.precision == 1.0 and report.recall == 1.0 and report.f1 == 1.0

    def test_f1_zero_when_no_updates(self):
        from repro.metrics import evaluate_repairs

        report = evaluate_repairs({}, cities_rel(), {(0, "city"): "X"})
        assert report.f1 == 0.0
