"""ColumnView construction, filtering semantics, and incremental patching.

The stale-cache failure mode — a repair lands but a cached array/index
keeps answering with pre-repair values — is the main risk of the columnar
backend, so most tests here drive updates through ``Relation.update_cells``
/ ``Daisy`` fixes and assert the patched view answers like a fresh scan.
"""

from __future__ import annotations

import pytest

from repro import Daisy
from repro.probabilistic.value import Candidate, PValue, ValueRange, cell_compare
from repro.relation import ColumnType, Relation
from repro.relation.columnview import (
    BACKEND_COLUMNAR,
    BACKEND_ROWSTORE,
    ColumnView,
    validate_backend,
)


def make_relation():
    return Relation.from_rows(
        [("k", ColumnType.INT), ("v", ColumnType.INT), ("s", ColumnType.STRING)],
        [
            (1, 10, "a"),
            (2, 20, "b"),
            (3, 30, "a"),
            (4, None, "c"),
            (5, 50, "b"),
        ],
        name="t",
    )


def naive_filter(relation, attr, op, value):
    idx = relation.schema.index_of(attr)
    return {
        row.tid for row in relation.rows if cell_compare(row.values[idx], op, value)
    }


class TestConstruction:
    def test_arrays_mirror_rows(self):
        rel = make_relation()
        view = rel.column_view()
        assert view.tids == [0, 1, 2, 3, 4]
        assert view.columns["k"] == [1, 2, 3, 4, 5]
        assert view.columns["v"] == [10, 20, 30, None, 50]
        assert len(view) == len(rel)

    def test_view_is_cached_on_relation(self):
        rel = make_relation()
        assert rel.column_view() is rel.column_view()

    def test_pvalue_sidecar_tracks_probabilistic_positions(self):
        rel = make_relation()
        pv = PValue([Candidate(20, 0.6), Candidate(99, 0.4)])
        rel2 = rel.update_cells({(1, "v"): pv})
        view = rel2.column_view()
        assert view.pvalue_positions("v") == {1}
        assert view.pvalue_positions("k") == frozenset()

    def test_validate_backend(self):
        assert validate_backend(BACKEND_COLUMNAR) == "columnar"
        assert validate_backend(BACKEND_ROWSTORE) == "rowstore"
        with pytest.raises(ValueError):
            validate_backend("arrow")


class TestFiltering:
    @pytest.mark.parametrize("op,value", [
        ("<", 30), ("<=", 30), (">", 20), (">=", 20), ("=", 20), ("!=", 20),
        ("<", -1), (">", 1000), ("=", 12345), ("=", None),
    ])
    def test_matches_possible_worlds_scan_concrete(self, op, value):
        rel = make_relation()
        view = rel.column_view()
        assert view.filter_tids("v", op, value) == naive_filter(rel, "v", op, value)

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "=", "!="])
    def test_matches_with_pvalues(self, op):
        rel = make_relation()
        rel = rel.update_cells({
            (0, "v"): PValue([Candidate(10, 0.5), Candidate(25, 0.5)]),
            (4, "v"): PValue([Candidate(ValueRange(low=40.0, high=60.0), 1.0)]),
        })
        view = rel.column_view()
        for value in (-5, 10, 24, 25, 41, 60, 61):
            assert view.filter_tids("v", op, value) == naive_filter(rel, "v", op, value), (
                op, value,
            )

    def test_string_column_and_cross_type_constant(self):
        rel = make_relation()
        view = rel.column_view()
        assert view.filter_tids("s", "=", "a") == {0, 2}
        assert view.filter_tids("s", "<", "b") == {0, 2}
        # Incomparable constant: no row satisfies (same as cell_compare).
        assert view.filter_tids("s", "<", 42) == naive_filter(rel, "s", "<", 42)


class TestPatching:
    def test_update_cells_carries_patched_view(self):
        rel = make_relation()
        old_view = rel.column_view()
        rel2 = rel.update_cells({(2, "v"): 99})
        new_view = rel2._colview
        assert new_view is not None and new_view is not old_view
        assert new_view.columns["v"][2] == 99
        # Untouched columns are shared, touched ones copied.
        assert new_view.columns["k"] is old_view.columns["k"]
        assert new_view.columns["v"] is not old_view.columns["v"]
        # The old view still answers for the old relation.
        assert old_view.columns["v"][2] == 30

    def test_patched_view_filters_fresh_values(self):
        rel = make_relation()
        view = rel.column_view()
        assert view.filter_tids("v", ">", 40) == {4}  # warm the sorted index
        rel2 = rel.update_cells({(0, "v"): 70})
        assert rel2.column_view().filter_tids("v", ">", 40) == {0, 4}
        assert rel.column_view().filter_tids("v", ">", 40) == {4}

    def test_patch_to_pvalue_and_back(self):
        rel = make_relation()
        rel.column_view().filter_tids("v", "=", 20)  # warm the hash index
        pv = PValue([Candidate(20, 0.5), Candidate(80, 0.5)])
        rel2 = rel.update_cells({(1, "v"): pv})
        view2 = rel2.column_view()
        assert view2.filter_tids("v", "=", 80) == {1}
        assert view2.filter_tids("v", "=", 20) == {1}
        rel3 = rel2.update_cells({(1, "v"): 80})
        view3 = rel3.column_view()
        assert view3.pvalue_positions("v") == set()
        assert view3.filter_tids("v", "=", 20) == set()
        assert view3.filter_tids("v", "=", 80) == {1}

    def test_apply_delta_patches_all_columns(self):
        from repro.relation.relation import Row

        rel = make_relation()
        rel.column_view()
        rel2 = rel.apply_delta({3: Row(3, (4, 44, "z"))})
        view = rel2.column_view()
        assert view.columns["v"][3] == 44
        assert view.columns["s"][3] == "z"

    def test_derived_cache_eviction_and_survival(self):
        rel = make_relation()
        view = rel.column_view()
        built = []

        def build_k():
            built.append("k")
            return {"which": "k"}

        view.derived("dk", ("k",), build_k)
        view.derived("dk", ("k",), build_k)
        assert built == ["k"]  # cached
        view2 = rel.update_cells({(1, "v"): 21}).column_view()
        # 'v' patch must not evict the k-derived entry...
        view2.derived("dk", ("k",), build_k)
        assert built == ["k"]
        # ...but a k patch must (no patch protocol on a plain dict payload).
        view3 = rel.update_cells({(1, "k"): 7}).column_view()
        view3.derived("dk", ("k",), build_k)
        assert built == ["k", "k"]

    def test_eviction_is_explicit_counted_and_logged(self, caplog):
        """Payloads without ``patched_for_view`` must not vanish silently:
        the eviction bumps a counter and emits a debug log record."""
        import logging

        rel = make_relation()
        view = rel.column_view()
        view.derived("dk", ("k",), lambda: {"which": "k"})
        view.derived("dv", ("v",), lambda: {"which": "v"})
        assert view.derived_evictions == 0
        with caplog.at_level(logging.DEBUG, logger="repro.relation.columnview"):
            view2 = rel.update_cells({(1, "k"): 7}).column_view()
        assert view2.derived_evictions == 1  # dk evicted, dv survived
        assert any("evicted derived payload" in r.message for r in caplog.records)
        # The counter is cumulative along the patch chain.
        rel2 = rel.update_cells({(1, "k"): 7})
        view3 = rel2.update_cells({(2, "v"): 99}).column_view()
        assert view3.derived_evictions == 2

    def test_group_index_matches_cold_rebuild_after_patch(self):
        """Regression: the group index is evicted (it is a plain tuple) when
        a patch touches its key attribute — the rebuilt index must equal a
        cold rebuild's, not answer with pre-patch groups."""
        rel = make_relation()
        view = rel.column_view()
        _order, groups = view.group_index(("s",))
        assert groups[("a",)] == [0, 2]
        updated = rel.update_cells({(0, "s"): "b", (4, "s"): "a"})
        patched = updated.column_view()
        cold = ColumnView.from_relation(updated)
        assert patched.group_index(("s",)) == cold.group_index(("s",))
        _order2, groups2 = patched.group_index(("s",))
        assert groups2[("a",)] == [2, 4]
        assert groups2[("b",)] == [0, 1]
        # Multi-key index over a touched attr rebuilds correctly too.
        assert patched.group_index(("s", "k")) == cold.group_index(("s", "k"))

    def test_hash_index_matches_cold_rebuild_after_patch(self):
        rel = make_relation()
        view = rel.column_view()
        assert view.hash_column("v")[20] == [1]
        updated = rel.update_cells({(1, "v"): 30, (4, "v"): 20})
        patched = updated.column_view()
        cold = ColumnView.from_relation(updated)
        assert patched.hash_column("v") == cold.hash_column("v")
        assert patched.hash_column("v")[30] == [1, 2]
        assert patched.hash_column("v")[20] == [4]
        # Untouched column's index object is shared, not rebuilt.
        view.sorted_column("k")
        patched_k = rel.update_cells({(1, "v"): 31}).column_view()
        assert patched_k._sorted["k"] is view._sorted["k"]


class TestIndexColumnarConstruction:
    """HashIndex/GroupIndex built from a view equal their row-built twins."""

    def make_relation_with_pvalues(self):
        rel = make_relation()
        return rel.update_cells({
            (1, "v"): PValue([Candidate(20, 0.6), Candidate(35, 0.4)]),
            (3, "s"): PValue([Candidate("c", 0.7), Candidate("a", 0.3)]),
        })

    def test_hash_index_parity(self):
        from repro.relation import HashIndex

        rel = self.make_relation_with_pvalues()
        for attr in ("k", "v", "s"):
            from_rows = HashIndex(rel, attr)
            from_view = HashIndex(rel, attr, view=rel.column_view())
            assert from_view.keys() == from_rows.keys(), attr
            for key in from_rows.keys():
                assert from_view.lookup(key) == from_rows.lookup(key), (attr, key)

    def test_group_index_parity(self):
        from repro.relation import GroupIndex

        rel = self.make_relation_with_pvalues()
        for attrs in (("s",), ("k", "s"), ("v",)):
            from_rows = GroupIndex(rel, attrs)
            from_view = GroupIndex(rel, attrs, view=rel.column_view())
            assert from_view.groups() == from_rows.groups(), attrs


class TestDaisyIntegration:
    """End-to-end: Daisy's in-place fixes keep the cached view fresh."""

    def make_daisy(self):
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [
                (9001, "Los Angeles"),
                (9001, "San Francisco"),
                (9001, "Los Angeles"),
                (10001, "San Francisco"),
                (10001, "New York"),
            ],
            name="cities",
        )
        daisy = Daisy(use_cost_model=False, backend="columnar")
        daisy.register_table("cities", rel)
        daisy.add_rule("cities", "zip -> city")
        return daisy

    def test_fix_patches_view_instead_of_rebuilding(self):
        daisy = self.make_daisy()
        before = daisy.table("cities").column_view()
        daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        after = daisy.table("cities").column_view()
        assert after.version > before.version  # patched lineage, not a rebuild
        assert daisy.probabilistic_cells("cities") > 0

    def test_view_matches_relation_after_fixes(self):
        daisy = self.make_daisy()
        daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        daisy.execute("SELECT city FROM cities WHERE zip = 10001")
        relation = daisy.table("cities")
        view = relation.column_view()
        fresh = ColumnView.from_relation(relation)
        assert view.tids == fresh.tids
        for attr in relation.schema.names:
            assert view.columns[attr] == fresh.columns[attr], attr
            assert set(view.pvalue_positions(attr)) == set(
                fresh.pvalue_positions(attr)
            ), attr

    def test_queries_after_fixes_see_probabilistic_matches(self):
        daisy = self.make_daisy()
        daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        # Tuple 2's city was repaired into a PValue containing 'Los Angeles';
        # a stale filter cache would miss it.
        result = daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        tids = daisy.table("cities").column_view().filter_tids(
            "city", "=", "Los Angeles"
        )
        assert {0, 1, 2} <= tids
        assert len(result) >= 3
