"""Tests for predicates, denial constraints, FDs, and the parser."""

import pytest

from repro.constraints import (
    DenialConstraint,
    FilterSide,
    FunctionalDependency,
    Predicate,
    analyze_rule_overlap,
    as_dc,
    as_fd,
    decompose_fd,
    eq,
    filter_side,
    neq,
    parse_dc,
    parse_fd,
    parse_rule,
    query_accesses_rule,
    relevant_rules,
    split_rules,
)
from repro.errors import ConstraintError, ConstraintParseError


class TestPredicate:
    def test_constant_predicate(self):
        p = Predicate(0, "age", ">=", constant=18)
        assert p.is_constant()
        assert p.is_single_tuple()

    def test_two_tuple_predicate(self):
        p = eq("zip")
        assert not p.is_constant()
        assert p.tuple_variables() == {0, 1}

    def test_bad_operator_rejected(self):
        with pytest.raises(ConstraintError):
            Predicate(0, "a", "~", 1, "a")

    def test_half_specified_right_rejected(self):
        with pytest.raises(ConstraintError):
            Predicate(0, "a", "=", right_tuple=1)

    def test_negated(self):
        assert eq("zip").negated().op == "!="
        assert Predicate(0, "a", "<", 1, "a").negated().op == ">="

    def test_flipped(self):
        p = Predicate(0, "salary", "<", 1, "tax").flipped()
        assert p.op == ">"
        assert p.left_attr == "tax"

    def test_flip_constant_rejected(self):
        with pytest.raises(ConstraintError):
            Predicate(0, "a", "=", constant=1).flipped()

    def test_str(self):
        assert str(eq("zip")) == "t1.zip=t2.zip"


class TestDenialConstraint:
    def test_fd_shaped(self):
        dc = DenialConstraint([eq("zip"), neq("city")])
        assert dc.is_fd_shaped()
        fd = dc.to_fd()
        assert fd.lhs == ("zip",)
        assert fd.rhs == "city"

    def test_inequality_dc_not_fd_shaped(self):
        dc = DenialConstraint(
            [Predicate(0, "s", "<", 1, "s"), Predicate(0, "t", ">", 1, "t")]
        )
        assert not dc.is_fd_shaped()
        with pytest.raises(ConstraintError):
            dc.to_fd()

    def test_arity(self):
        assert DenialConstraint([eq("a")]).arity == 2
        assert DenialConstraint([Predicate(0, "a", ">", constant=1)]).arity == 1

    def test_attributes(self):
        dc = DenialConstraint([eq("zip"), neq("city")])
        assert dc.attributes() == {"zip", "city"}

    def test_empty_rejected(self):
        with pytest.raises(ConstraintError):
            DenialConstraint([])

    def test_find_violations_fd(self, cities_relation):
        dc = DenialConstraint([eq("zip"), neq("city")])
        pairs = dc.find_violations(cities_relation)
        assert (0, 1) in pairs and (3, 4) in pairs
        assert (0, 2) not in pairs  # same city, no violation

    def test_find_violations_inequality(self, salary_tax_relation):
        dc = DenialConstraint(
            [Predicate(0, "salary", "<", 1, "salary"), Predicate(0, "tax", ">", 1, "tax")]
        )
        pairs = dc.find_violations(salary_tax_relation)
        assert pairs == [(2, 1)]  # (2000, 0.3) vs (3000, 0.2)

    def test_violates_checks_arity(self, cities_relation):
        dc = DenialConstraint([eq("zip"), neq("city")])
        with pytest.raises(ConstraintError):
            dc.violates(cities_relation.rows[:1], cities_relation)


class TestFunctionalDependency:
    def test_roundtrip_via_dc(self):
        fd = FunctionalDependency(("a", "b"), "c", name="f")
        assert fd.to_dc().to_fd() == fd

    def test_rhs_in_lhs_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("a", "a")

    def test_decompose(self):
        fds = decompose_fd("zip", ["city", "state"], name="f")
        assert [f.rhs for f in fds] == ["city", "state"]
        assert all(f.lhs == ("zip",) for f in fds)

    def test_as_helpers(self):
        fd = FunctionalDependency("a", "b")
        assert as_fd(fd) is fd
        assert as_dc(fd).is_fd_shaped()
        dc = DenialConstraint([Predicate(0, "s", "<", 1, "s")])
        assert as_fd(dc) is None
        assert as_dc(dc) is dc


class TestParser:
    def test_parse_fd_simple(self):
        (fd,) = parse_fd("zip -> city")
        assert fd.lhs == ("zip",) and fd.rhs == "city"

    def test_parse_fd_composite_lhs(self):
        (fd,) = parse_fd("county_code, state_code -> county_name")
        assert fd.lhs == ("county_code", "state_code")

    def test_parse_fd_multi_rhs_decomposes(self):
        fds = parse_fd("zip -> city, state")
        assert len(fds) == 2

    def test_parse_fd_missing_arrow(self):
        with pytest.raises(ConstraintParseError):
            parse_fd("zip city")

    def test_parse_dc_fd_shaped(self):
        dc = parse_dc("not(t1.zip = t2.zip & t1.city != t2.city)")
        assert dc.is_fd_shaped()

    def test_parse_dc_with_quantifier(self):
        dc = parse_dc("forall t1,t2: not(t1.salary < t2.salary & t1.tax > t2.tax)")
        assert len(dc.predicates) == 2
        assert dc.predicates[0].op == "<"

    def test_parse_dc_unicode(self):
        dc = parse_dc("∀t1,t2:¬(t1.zip=t2.zip ∧ t1.city≠t2.city)")
        assert dc.is_fd_shaped()

    def test_parse_dc_constant(self):
        dc = parse_dc("not(t1.age < 18)")
        assert dc.predicates[0].constant == 18

    def test_parse_dc_string_constant(self):
        dc = parse_dc("not(t1.city = 'LA' & t1.zip != 9001)")
        assert dc.predicates[0].constant == "LA"

    def test_parse_dc_flips_constant_on_left(self):
        dc = parse_dc("not(18 > t1.age)")
        pred = dc.predicates[0]
        assert pred.left_attr == "age" and pred.op == "<"

    def test_parse_rule_dispatches(self):
        assert isinstance(parse_rule("a -> b")[0], FunctionalDependency)
        assert isinstance(
            parse_rule("not(t1.a < t2.a & t1.b > t2.b)")[0], DenialConstraint
        )
        # FD-shaped DC comes back as an FD
        assert isinstance(
            parse_rule("not(t1.a = t2.a & t1.b != t2.b)")[0], FunctionalDependency
        )

    def test_parse_dc_trailing_garbage(self):
        with pytest.raises(ConstraintParseError):
            parse_dc("not(t1.a = t2.a) extra")

    def test_parse_dc_two_constants_rejected(self):
        with pytest.raises(ConstraintParseError):
            parse_dc("not(1 = 2)")


class TestAnalysis:
    def test_query_accesses_rule(self):
        fd = FunctionalDependency("zip", "city")
        assert query_accesses_rule(["zip"], [], fd)
        assert query_accesses_rule([], ["city"], fd)
        assert not query_accesses_rule(["name"], ["phone"], fd)

    def test_relevant_rules(self):
        fd1 = FunctionalDependency("zip", "city")
        fd2 = FunctionalDependency("phone", "zip")
        assert relevant_rules(["city"], [], [fd1, fd2]) == [fd1]

    def test_filter_side(self):
        fd = FunctionalDependency("zip", "city")
        assert filter_side(["zip"], fd) is FilterSide.LHS
        assert filter_side(["city"], fd) is FilterSide.RHS
        assert filter_side(["zip", "city"], fd) is FilterSide.BOTH
        assert filter_side(["name"], fd) is FilterSide.NONE

    def test_analyze_rule_overlap(self):
        fd1 = FunctionalDependency("orderkey", "suppkey")
        fd2 = FunctionalDependency("address", "suppkey")
        overlap = analyze_rule_overlap([fd1, fd2])
        assert "suppkey" in overlap.shared_attributes
        assert overlap.rule_pairs == ((0, 1),)

    def test_split_rules(self):
        fd = FunctionalDependency("a", "b")
        dc = DenialConstraint([Predicate(0, "s", "<", 1, "s")])
        fd_shaped = DenialConstraint([eq("x"), neq("y")])
        fds, dcs = split_rules([fd, dc, fd_shaped])
        assert len(fds) == 2 and len(dcs) == 1
