"""Tests for the Section 5.2 cost model and precomputed statistics."""


from repro.constraints import FunctionalDependency
from repro.core import (
    CostModel,
    CostModelConfig,
    QueryObservation,
    build_fd_statistics,
    incremental_query_cost,
    offline_cost,
)
from repro.relation import ColumnType, Relation


class TestCostFormulas:
    def test_offline_cost_fd_linear_detection(self):
        cost = offline_cost(n=1000, errors=10, candidates_per_error=2, num_queries=5)
        # q·n + n + ε·n + n + ε·p
        assert cost == 5 * 1000 + 1000 + 10 * 1000 + 1000 + 20

    def test_offline_cost_dc_quadratic_detection(self):
        fd = offline_cost(100, 0, 1, 0, is_dc=False)
        dc = offline_cost(100, 0, 1, 0, is_dc=True)
        assert dc > fd

    def test_incremental_first_query_scans_everything(self):
        cost = incremental_query_cost(
            n=1000, seen_tuples=0, result_size=20, extra_tuples=5,
            errors=2, prior_prob_values=0, candidates_per_error=2,
        )
        assert cost >= 1000  # relaxation over the unknown remainder

    def test_incremental_relaxation_shrinks_with_seen(self):
        kwargs = dict(
            result_size=20, extra_tuples=5, errors=2,
            prior_prob_values=0, candidates_per_error=2,
        )
        first = incremental_query_cost(n=1000, seen_tuples=0, **kwargs)
        later = incremental_query_cost(n=1000, seen_tuples=900, **kwargs)
        assert later < first

    def test_dc_detection_cost_higher(self):
        fd = incremental_query_cost(
            n=1000, seen_tuples=0, result_size=100, extra_tuples=0,
            errors=0, prior_prob_values=0, candidates_per_error=1, is_dc=False,
        )
        dc = incremental_query_cost(
            n=1000, seen_tuples=0, result_size=100, extra_tuples=0,
            errors=0, prior_prob_values=0, candidates_per_error=1, is_dc=True,
        )
        assert dc > fd


class TestCostModelDecision:
    def make_model(self, errors=100, p=2.0, expected=50):
        return CostModel(
            dataset_size=1000,
            estimated_errors=errors,
            candidates_per_error=p,
            config=CostModelConfig(expected_queries=expected),
        )

    def test_no_switch_with_no_queries_left(self):
        model = self.make_model(expected=1)
        model.observe(QueryObservation(20, 5, 2, 25.0))
        assert not model.should_switch_to_full()

    def test_switch_when_update_cost_dominates(self):
        # The Fig. 7 scenario: many candidate values per error (large p), a
        # long workload, and most errors already turned probabilistic — the
        # per-query probabilistic update cost dominates, so finishing with a
        # full clean of the remainder is cheaper.
        model = CostModel(
            dataset_size=1000,
            estimated_errors=900,
            candidates_per_error=20.0,
            config=CostModelConfig(expected_queries=100),
        )
        model.observe(
            QueryObservation(
                result_size=100, extra_tuples=700, errors=800, detection_cost=800.0
            )
        )
        assert model.should_switch_to_full()

    def test_no_switch_on_clean_data(self):
        model = CostModel(
            dataset_size=1000,
            estimated_errors=0,
            candidates_per_error=1.0,
            config=CostModelConfig(expected_queries=100),
        )
        model.observe(QueryObservation(10, 0, 0, 10.0))
        # With no errors, full cleaning buys nothing; projections still pay
        # relaxation, so allow either decision but require consistency.
        first = model.should_switch_to_full()
        assert first == model.should_switch_to_full()

    def test_observations_accumulate(self):
        model = self.make_model()
        model.observe(QueryObservation(10, 5, 3, 15.0))
        model.observe(QueryObservation(20, 5, 3, 25.0))
        assert model.errors_cleaned == 6
        assert model.tuples_seen == 40
        assert len(model.observations) == 2

    def test_remaining_errors_floor_zero(self):
        model = self.make_model(errors=5)
        model.observe(QueryObservation(10, 0, 10, 10.0))
        assert model.remaining_errors() == 0


class TestFdStatistics:
    def make_rel(self):
        return Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)],
            [(1, "a"), (1, "a"), (2, "b"), (2, "c"), (3, "d")],
        )

    def test_dirty_groups_found(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.dirty_groups == {(2,)}
        assert stats.dirty_group_count() == 1

    def test_group_sizes(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.group_sizes == {(1,): 2, (2,): 2, (3,): 1}

    def test_erroneous_entities(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.erroneous_entities() == 2

    def test_candidate_estimate_on_clean_data(self):
        rel = Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)], [(1, "a"), (2, "b")]
        )
        stats = build_fd_statistics(rel, FunctionalDependency("k", "v"))
        assert stats.candidate_count_estimate() == 1.0

    def test_is_dirty_key(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.is_dirty_key((2,))
        assert not stats.is_dirty_key((1,))

    def test_rhs_fanout(self):
        rel = Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)],
            [(1, "a"), (2, "a"), (3, "b")],
        )
        stats = build_fd_statistics(rel, FunctionalDependency("k", "v"))
        assert stats.rhs_fanout == {"a": 2, "b": 1}
