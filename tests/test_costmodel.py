"""Tests for the unified cost model: Section 5.2 formulas, statistics,
calibration, and the adaptive planner's pricing."""

import pytest

from repro.constraints import FunctionalDependency
from repro.core import (
    AdaptivePlanner,
    CostCalibration,
    CostModel,
    CostModelConfig,
    QueryObservation,
    build_fd_statistics,
    incremental_query_cost,
    offline_cost,
)
from repro.relation import ColumnType, Relation


class TestCostFormulas:
    def test_offline_cost_fd_linear_detection(self):
        cost = offline_cost(n=1000, errors=10, candidates_per_error=2, num_queries=5)
        # q·n + n + ε·n + n + ε·p
        assert cost == 5 * 1000 + 1000 + 10 * 1000 + 1000 + 20

    def test_offline_cost_dc_quadratic_detection(self):
        fd = offline_cost(100, 0, 1, 0, is_dc=False)
        dc = offline_cost(100, 0, 1, 0, is_dc=True)
        assert dc > fd

    def test_incremental_first_query_scans_everything(self):
        cost = incremental_query_cost(
            n=1000, seen_tuples=0, result_size=20, extra_tuples=5,
            errors=2, prior_prob_values=0, candidates_per_error=2,
        )
        assert cost >= 1000  # relaxation over the unknown remainder

    def test_incremental_relaxation_shrinks_with_seen(self):
        kwargs = dict(
            result_size=20, extra_tuples=5, errors=2,
            prior_prob_values=0, candidates_per_error=2,
        )
        first = incremental_query_cost(n=1000, seen_tuples=0, **kwargs)
        later = incremental_query_cost(n=1000, seen_tuples=900, **kwargs)
        assert later < first

    def test_dc_detection_cost_higher(self):
        fd = incremental_query_cost(
            n=1000, seen_tuples=0, result_size=100, extra_tuples=0,
            errors=0, prior_prob_values=0, candidates_per_error=1, is_dc=False,
        )
        dc = incremental_query_cost(
            n=1000, seen_tuples=0, result_size=100, extra_tuples=0,
            errors=0, prior_prob_values=0, candidates_per_error=1, is_dc=True,
        )
        assert dc > fd


class TestCostModelDecision:
    def make_model(self, errors=100, p=2.0, expected=50):
        return CostModel(
            dataset_size=1000,
            estimated_errors=errors,
            candidates_per_error=p,
            config=CostModelConfig(expected_queries=expected),
        )

    def test_no_switch_with_no_queries_left(self):
        model = self.make_model(expected=1)
        model.observe(QueryObservation(20, 5, 2, 25.0))
        assert not model.should_switch_to_full()

    def test_switch_when_update_cost_dominates(self):
        # The Fig. 7 scenario: many candidate values per error (large p), a
        # long workload, and most errors already turned probabilistic — the
        # per-query probabilistic update cost dominates, so finishing with a
        # full clean of the remainder is cheaper.
        model = CostModel(
            dataset_size=1000,
            estimated_errors=900,
            candidates_per_error=20.0,
            config=CostModelConfig(expected_queries=100),
        )
        model.observe(
            QueryObservation(
                result_size=100, extra_tuples=700, errors=800, detection_cost=800.0
            )
        )
        assert model.should_switch_to_full()

    def test_no_switch_on_clean_data(self):
        model = CostModel(
            dataset_size=1000,
            estimated_errors=0,
            candidates_per_error=1.0,
            config=CostModelConfig(expected_queries=100),
        )
        model.observe(QueryObservation(10, 0, 0, 10.0))
        # With no errors, full cleaning buys nothing; projections still pay
        # relaxation, so allow either decision but require consistency.
        first = model.should_switch_to_full()
        assert first == model.should_switch_to_full()

    def test_observations_accumulate(self):
        model = self.make_model()
        model.observe(QueryObservation(10, 5, 3, 15.0))
        model.observe(QueryObservation(20, 5, 3, 25.0))
        assert model.errors_cleaned == 6
        assert model.tuples_seen == 40
        assert len(model.observations) == 2

    def test_remaining_errors_floor_zero(self):
        model = self.make_model(errors=5)
        model.observe(QueryObservation(10, 0, 10, 10.0))
        assert model.remaining_errors() == 0

    def test_switch_costs_expose_both_sides_of_the_inequality(self):
        model = self.make_model()
        model.observe(QueryObservation(20, 5, 2, 25.0))
        costs = model.switch_costs()
        assert costs is not None
        incremental, full = costs
        assert incremental == model.projected_incremental_remaining(
            model.config.expected_queries - 1
        )
        assert full == model.full_clean_now_cost(model.config.expected_queries - 1)
        # The boolean decision is exactly the inequality over these costs.
        assert model.should_switch_to_full() == (incremental > full)

    def test_switch_costs_none_when_workload_over(self):
        model = self.make_model(expected=1)
        model.observe(QueryObservation(20, 5, 2, 25.0))
        assert model.switch_costs() is None
        assert not model.should_switch_to_full()


class TestCostCalibration:
    def test_defaults_to_identity(self):
        calibration = CostCalibration()
        assert calibration.factor("dc_check") == 1.0
        assert calibration.calibrated("dc_check", 500) == 500

    def test_first_sample_adopts_observed_ratio(self):
        calibration = CostCalibration()
        calibration.observe("dc_check", 100, 700)
        assert calibration.factor("dc_check") == pytest.approx(7.0)

    def test_replayed_log_monotonically_improves_estimates(self):
        """On a replayed work log with a stable observed/estimated ratio,
        every calibration update shrinks the absolute estimation error —
        the feedback loop never regresses on stationary workloads."""
        calibration = CostCalibration(alpha=0.3)
        # A replayed log: raw estimates with the true cost at 12.5x —
        # seeded away from the truth by a misleading first observation.
        calibration.observe("fd_relax", 100, 300)  # factor jumps to 3.0
        log = [(80, 1000), (120, 1500), (100, 1250), (60, 750), (90, 1125)]
        errors = []
        for raw, observed in log:
            errors.append(abs(calibration.calibrated("fd_relax", raw) / raw - 12.5))
            calibration.observe("fd_relax", raw, observed)
        errors.append(abs(calibration.factor("fd_relax") - 12.5))
        assert all(b < a for a, b in zip(errors, errors[1:]))
        assert calibration.factor("fd_relax") == pytest.approx(12.5, rel=0.35)

    def test_buckets_are_independent(self):
        calibration = CostCalibration()
        calibration.observe("dc_check", 10, 100)
        assert calibration.factor("fd_relax") == 1.0
        assert calibration.samples("dc_check") == 1
        assert calibration.samples("fd_relax") == 0

    def test_ignores_degenerate_samples(self):
        calibration = CostCalibration()
        calibration.observe("dc_check", 0, 100)      # no raw estimate
        calibration.observe("dc_check", 10, -5)      # negative observation
        calibration.observe("dc_check", 10, float("nan"))
        assert calibration.factor("dc_check") == 1.0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            CostCalibration(alpha=0.0)
        with pytest.raises(ValueError):
            CostCalibration(alpha=1.5)


class TestPlannerPricing:
    def test_completion_cost_model_orders_alternatives_sensibly(self):
        planner = AdaptivePlanner(cpu_count=4, max_workers=4)
        small = planner.pool_alternatives("dc_check", 200)
        assert min(small, key=small.get) == "serial"
        huge = planner.pool_alternatives("dc_check", 5_000_000)
        assert min(huge, key=huge.get) == "process:4"

    def test_calibration_moves_the_serial_threshold(self):
        planner = AdaptivePlanner(cpu_count=4, max_workers=4)
        raw = 1200
        plan, decision = planner.choose_pool("fd_relax", "t", raw)
        assert plan.kind == "serial"
        # Observing that passes of this kind cost ~20x their raw estimate
        # pushes the same raw size over the fan-out threshold.
        planner.observe(decision, 24_000)
        plan2, _ = planner.choose_pool("fd_relax", "t", raw)
        assert plan2.parallel

    def test_strategy_verdicts_do_not_contaminate_calibration(self):
        planner = AdaptivePlanner(cpu_count=2)
        model = CostModel(
            dataset_size=1000, estimated_errors=900, candidates_per_error=20.0,
            config=CostModelConfig(expected_queries=100),
        )
        model.observe(QueryObservation(100, 700, 800, 800.0))
        decision = planner.strategy_switch("t", model)
        assert decision is not None and decision.choice == "full_clean_now"
        # The estimate projects remaining-workload execution; the observed
        # value is only the clean's counter delta — record, don't calibrate.
        planner.observe(decision, 5000)
        assert decision.observed_cost == 5000
        assert planner.calibration.samples("strategy") == 0

    def test_decision_log_is_capped(self):
        planner = AdaptivePlanner(cpu_count=1)
        cap = AdaptivePlanner.MAX_DECISIONS
        mark = planner.mark()
        for i in range(cap + 50):
            planner.choose_pool("dc_check", f"t{i}", 10)
        assert len(planner.decisions) == cap
        assert planner.decisions_dropped == 50
        # Marks are absolute: the slice loses only what the cap discarded.
        since = planner.decisions_since(mark)
        assert len(since) == cap
        assert since[-1].table == f"t{cap + 49}"
        late_mark = planner.mark()
        planner.choose_pool("dc_check", "late", 10)
        assert [d.table for d in planner.decisions_since(late_mark)] == ["late"]


class TestFdStatistics:
    def make_rel(self):
        return Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)],
            [(1, "a"), (1, "a"), (2, "b"), (2, "c"), (3, "d")],
        )

    def test_dirty_groups_found(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.dirty_groups == {(2,)}
        assert stats.dirty_group_count() == 1

    def test_group_sizes(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.group_sizes == {(1,): 2, (2,): 2, (3,): 1}

    def test_erroneous_entities(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.erroneous_entities() == 2

    def test_candidate_estimate_on_clean_data(self):
        rel = Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)], [(1, "a"), (2, "b")]
        )
        stats = build_fd_statistics(rel, FunctionalDependency("k", "v"))
        assert stats.candidate_count_estimate() == 1.0

    def test_is_dirty_key(self):
        stats = build_fd_statistics(self.make_rel(), FunctionalDependency("k", "v"))
        assert stats.is_dirty_key((2,))
        assert not stats.is_dirty_key((1,))

    def test_rhs_fanout(self):
        rel = Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)],
            [(1, "a"), (2, "a"), (3, "b")],
        )
        stats = build_fd_statistics(rel, FunctionalDependency("k", "v"))
        assert stats.rhs_fanout == {"a": 2, "b": 1}
