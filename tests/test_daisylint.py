"""daisylint: per-rule fixture tests, suppression/baseline mechanics, CLI,
and the meta-gate that the repo's own src/ tree lints clean.

Each rule gets at least one positive fixture (the defect fires) and one
negative fixture (the idiomatic form stays silent), plus scope checks —
rules only apply to the repo paths where their invariant binds.  The
subprocess test at the bottom is the regression lock for the
PYTHONHASHSEED-dependent iteration orders DL001 flushed out of
``detection/maintenance.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.daisylint import core as dl  # noqa: E402
from tools.daisylint import cli  # noqa: E402
from tools.daisylint import rules as dl_rules  # noqa: E402  (registers rules)

DETECTION = "src/repro/detection/fixture.py"
ENGINE = "src/repro/engine/fixture.py"
OUTSIDE = "src/repro/metrics/fixture.py"


def lint(source: str, relpath: str = DETECTION, codes: tuple[str, ...] | None = None):
    """Lint a dedented source string as if it lived at ``relpath``."""
    module = dl.ModuleInfo.parse(Path(relpath), relpath, textwrap.dedent(source))
    rules = [dl.RULES[c] for c in codes] if codes else None
    return dl.lint_module(module, rules=rules)


def codes_of(findings) -> list[str]:
    return [f.code for f in findings]


class TestRegistry:
    def test_full_rule_suite_registered(self):
        assert sorted(dl.RULES) == [f"DL00{i}" for i in range(1, 10)] + [
            f"DL10{i}" for i in range(1, 5)
        ]

    def test_rules_carry_metadata(self):
        for rule in dl.iter_rules():
            assert rule.code and rule.name and rule.rationale

    def test_duplicate_code_rejected(self):
        class Clash(dl.Rule):
            code = "DL001"

        with pytest.raises(ValueError, match="duplicate"):
            dl.register(Clash)


class TestDL001SetIteration:
    def test_for_over_set_flagged(self):
        findings = lint(
            """
            def f():
                s = {1, 2, 3}
                out = []
                for x in s:
                    out.append(x)
                return out
            """
        )
        assert codes_of(findings) == ["DL001"]

    def test_sorted_wrap_is_clean(self):
        findings = lint(
            """
            def f():
                s = {1, 2, 3}
                out = []
                for x in sorted(s):
                    out.append(x)
                return out
            """
        )
        assert findings == []

    def test_list_call_over_set_flagged(self):
        findings = lint("s = {1, 2}\nmaterialized = list(s)\n")
        assert codes_of(findings) == ["DL001"]

    def test_comprehension_over_set_flagged(self):
        findings = lint(
            """
            def f():
                s = set([3, 1])
                return [x + 1 for x in s]
            """
        )
        assert codes_of(findings) == ["DL001"]

    def test_set_comprehension_consumer_is_clean(self):
        # set -> set cannot leak order.
        findings = lint(
            """
            def f():
                s = {1, 2}
                return {x + 1 for x in s}
            """
        )
        assert findings == []

    def test_order_insensitive_consumer_is_clean(self):
        findings = lint(
            """
            def f():
                s = {1, 2}
                return sum(x for x in s)
            """
        )
        assert findings == []

    def test_join_over_set_flagged(self):
        findings = lint(
            """
            def f():
                names = {"b", "a"}
                return ",".join(names)
            """
        )
        assert codes_of(findings) == ["DL001"]

    def test_rebound_name_disqualifies(self):
        # One non-set binding makes the name unknown: no finding.
        findings = lint(
            """
            def f(rows):
                s = {1, 2}
                s = rows
                return [x for x in s]
            """
        )
        assert findings == []

    def test_rule_scoped_to_result_packages(self):
        source = "s = {1, 2}\nmaterialized = list(s)\n"
        assert codes_of(lint(source, relpath=DETECTION)) == ["DL001"]
        assert lint(source, relpath=OUTSIDE) == []


class TestDL002ForkUnsafeClosure:
    def test_lambda_capturing_loop_var_flagged(self):
        findings = lint(
            """
            def fan_out(pool, cells):
                pool.map([lambda: check(cell) for cell in cells])
            """,
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL002"]
        assert "late binding" in findings[0].message

    def test_default_arg_binding_is_clean(self):
        findings = lint(
            """
            def fan_out(pool, cells):
                pool.map([lambda cell=cell: check(cell) for cell in cells])
            """,
            relpath=ENGINE,
        )
        assert findings == []

    def test_mutation_after_capture_flagged(self):
        findings = lint(
            """
            def fan_out(pool):
                state = build_state()
                task = lambda: consume(state)
                state = rebuild_state()
                pool.submit(task)
            """,
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL002"]
        assert "mutated after" in findings[0].message

    def test_frozen_capture_is_clean(self):
        findings = lint(
            """
            def fan_out(pool):
                state = build_state()
                task = lambda: consume(state)
                pool.submit(task)
            """,
            relpath=ENGINE,
        )
        assert findings == []

    def test_named_sink_without_attribute_flagged(self):
        findings = lint(
            """
            def fan_out(parts):
                parallel_relax_fd([lambda: go(p) for p in parts])
            """,
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL002"]


class TestDL003WallClock:
    def test_time_call_flagged(self):
        findings = lint(
            "import time\n\nstamp = time.perf_counter()\n", relpath=ENGINE
        )
        assert codes_of(findings) == ["DL003"]

    def test_from_import_alias_flagged(self):
        findings = lint(
            "from time import perf_counter as pc\n\nstamp = pc()\n",
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL003"]

    def test_datetime_now_flagged(self):
        findings = lint(
            "import datetime\n\nstamp = datetime.datetime.now()\n",
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL003"]

    def test_timing_module_is_exempt(self):
        source = "import time\n\nstamp = time.perf_counter()\n"
        assert lint(source, relpath="src/repro/metrics/timing.py") == []

    def test_non_clock_time_attr_is_clean(self):
        findings = lint("import time\n\nzone = time.tzname\n", relpath=ENGINE)
        assert findings == []


class TestDL004UnseededRandom:
    def test_global_random_flagged(self):
        findings = lint(
            "import random\n\nx = random.random()\n", relpath=ENGINE
        )
        assert codes_of(findings) == ["DL004"]

    def test_unseeded_random_instance_flagged(self):
        findings = lint(
            "import random\n\nrng = random.Random()\n", relpath=ENGINE
        )
        assert codes_of(findings) == ["DL004"]

    def test_seeded_random_instance_is_clean(self):
        findings = lint(
            "import random\n\nrng = random.Random(42)\n", relpath=ENGINE
        )
        assert findings == []

    def test_numpy_global_rng_flagged(self):
        findings = lint(
            "import numpy as np\n\nx = np.random.rand(3)\n", relpath=ENGINE
        )
        assert codes_of(findings) == ["DL004"]


class TestDL005OverbroadExcept:
    def test_bare_except_flagged(self):
        findings = lint(
            """
            def f():
                try:
                    work()
                except:
                    pass
            """,
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL005"]

    def test_broad_except_without_reraise_flagged(self):
        findings = lint(
            """
            def f():
                try:
                    work()
                except Exception:
                    return None
            """,
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL005"]

    def test_broad_except_with_reraise_is_clean(self):
        findings = lint(
            """
            def f():
                try:
                    work()
                except Exception as exc:
                    log(exc)
                    raise
            """,
            relpath=ENGINE,
        )
        assert findings == []

    def test_import_guard_is_clean(self):
        findings = lint(
            """
            try:
                import numpy
            except Exception:
                numpy = None
            """,
            relpath=ENGINE,
        )
        assert findings == []

    def test_narrow_except_is_clean(self):
        findings = lint(
            """
            def f():
                try:
                    work()
                except KeyError:
                    return None
            """,
            relpath=ENGINE,
        )
        assert findings == []


class TestDL006MutableDefault:
    def test_list_default_flagged(self):
        findings = lint("def f(xs=[]):\n    return xs\n", relpath=ENGINE)
        assert codes_of(findings) == ["DL006"]

    def test_dict_call_default_flagged(self):
        findings = lint("def f(opts=dict()):\n    return opts\n", relpath=ENGINE)
        assert codes_of(findings) == ["DL006"]

    def test_none_default_is_clean(self):
        findings = lint(
            "def f(xs=None):\n    return xs if xs is not None else []\n",
            relpath=ENGINE,
        )
        assert findings == []

    def test_tuple_default_is_clean(self):
        findings = lint("def f(xs=()):\n    return xs\n", relpath=ENGINE)
        assert findings == []


class TestDL007CounterBypass:
    def test_call_without_counter_flagged(self):
        findings = lint("delta = relax_fd(state, rule)\n", relpath=ENGINE)
        assert codes_of(findings) == ["DL007"]

    def test_counter_kwarg_is_clean(self):
        findings = lint(
            "delta = relax_fd(state, rule, counter=counter)\n", relpath=ENGINE
        )
        assert findings == []

    def test_kwargs_passthrough_is_clean(self):
        findings = lint(
            "def f(state, rule, **kw):\n    return relax_fd(state, rule, **kw)\n",
            relpath=ENGINE,
        )
        assert findings == []

    def test_unrelated_call_is_clean(self):
        findings = lint("x = relax_everything(state)\n", relpath=ENGINE)
        assert findings == []


KERNELS = "src/repro/relation/kernels.py"


class TestDL008KernelOracleRegistry:
    def test_missing_registry_flagged(self):
        findings = lint("def sorted_pairs(col):\n    return col\n", relpath=KERNELS)
        assert codes_of(findings) == ["DL008"]

    def test_complete_registry_is_clean(self):
        findings = lint(
            """
            def sorted_pairs(col):
                return col

            KERNEL_ORACLES = {"sorted_pairs": "sorted((v, p)) over cells"}
            """,
            relpath=KERNELS,
        )
        assert findings == []

    def test_unregistered_public_kernel_flagged(self):
        findings = lint(
            """
            def sorted_pairs(col):
                return col

            def group_indices(col):
                return col

            KERNEL_ORACLES = {"sorted_pairs": "oracle"}
            """,
            relpath=KERNELS,
        )
        assert codes_of(findings) == ["DL008"]
        assert "group_indices" in findings[0].message

    def test_orphan_registry_entry_flagged(self):
        findings = lint(
            """
            def sorted_pairs(col):
                return col

            KERNEL_ORACLES = {"sorted_pairs": "oracle", "ghost": "oracle"}
            """,
            relpath=KERNELS,
        )
        assert codes_of(findings) == ["DL008"]
        assert "ghost" in findings[0].message

    def test_empty_oracle_string_flagged(self):
        findings = lint(
            """
            def sorted_pairs(col):
                return col

            KERNEL_ORACLES = {"sorted_pairs": ""}
            """,
            relpath=KERNELS,
        )
        assert codes_of(findings) == ["DL008"]

    def test_private_functions_exempt(self):
        findings = lint(
            """
            def _helper(col):
                return col

            KERNEL_ORACLES = {}
            """,
            relpath=KERNELS,
        )
        assert findings == []

    def test_rule_only_applies_to_kernels_module(self):
        findings = lint(
            "def sorted_pairs(col):\n    return col\n", relpath=DETECTION
        )
        assert "DL008" not in codes_of(findings)


class TestDL009RawStorageAccess:
    def test_open_call_flagged(self):
        findings = lint(
            "def load(path):\n    with open(path) as h:\n        return h.read()\n",
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL009"]

    def test_sqlite3_import_and_connect_flagged(self):
        findings = lint(
            "import sqlite3\n\nconn = sqlite3.connect(':memory:')\n",
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL009", "DL009"]

    def test_sqlite3_import_alias_flagged(self):
        findings = lint(
            "import sqlite3 as sq\n\nconn = sq.connect(':memory:')\n",
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL009", "DL009"]

    def test_mmap_from_import_flagged(self):
        findings = lint("from mmap import mmap\n", relpath=ENGINE)
        assert codes_of(findings) == ["DL009"]

    def test_storage_package_is_exempt(self):
        source = (
            "import sqlite3\nimport mmap\n\n"
            "def load(path):\n    with open(path, 'rb') as h:\n"
            "        return h.read()\n"
        )
        assert lint(source, relpath="src/repro/storage/fixture.py") == []

    def test_tools_and_tests_are_exempt(self):
        source = "data = open('x').read()\n"
        assert lint(source, relpath="tools/bench/fixture.py") == []
        assert lint(source, relpath="tests/fixture.py") == []

    def test_method_named_open_is_clean(self):
        findings = lint(
            "def f(store):\n    return store.open()\n", relpath=ENGINE
        )
        assert findings == []


class TestSuppression:
    def test_inline_disable_suppresses(self):
        findings = lint(
            "def f(xs=[]):  # daisylint: disable=DL006\n    return xs\n",
            relpath=ENGINE,
        )
        assert findings == []

    def test_disable_other_code_does_not_suppress(self):
        findings = lint(
            "def f(xs=[]):  # daisylint: disable=DL001\n    return xs\n",
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL006"]

    def test_disable_all_suppresses_everything(self):
        findings = lint(
            "def f(xs=[]):  # daisylint: disable=all\n    return xs\n",
            relpath=ENGINE,
        )
        assert findings == []

    def test_marker_in_string_literal_is_inert(self):
        findings = lint(
            'MARKER = "daisylint: disable=DL006"\n'
            "def f(xs=[]):\n    return xs\n",
            relpath=ENGINE,
        )
        assert codes_of(findings) == ["DL006"]


class TestBaseline:
    def _finding(self, code="DL006", line=3, source="def f(xs=[]):"):
        return dl.Finding(
            code=code, path=ENGINE, line=line, col=0,
            message="m", source_line=source,
        )

    def test_fingerprint_survives_line_drift(self):
        a = self._finding(line=3)
        b = self._finding(line=40)
        (da, _), = dl.fingerprint_findings([a])
        (db, _), = dl.fingerprint_findings([b])
        assert da == db

    def test_identical_lines_get_distinct_fingerprints(self):
        pairs = dl.fingerprint_findings(
            [self._finding(line=3), self._finding(line=9)]
        )
        digests = [d for d, _ in pairs]
        assert len(set(digests)) == 2

    def test_never_baseline_codes_rejected(self):
        bad = self._finding(code="DL001", source="for x in s:")
        with pytest.raises(ValueError, match="DL001"):
            dl.Baseline.from_findings(dl.fingerprint_findings([bad]))
        bad = self._finding(code="DL002", source="pool.map(tasks)")
        with pytest.raises(ValueError, match="DL002"):
            dl.Baseline.from_findings(dl.fingerprint_findings([bad]))

    def test_roundtrip_and_matching(self, tmp_path):
        finding = self._finding()
        baseline = dl.Baseline.from_findings(dl.fingerprint_findings([finding]))
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = dl.Baseline.load(path)
        assert loaded.entries == baseline.entries

    def test_checked_in_baseline_has_no_dl001_dl002(self):
        baseline = dl.Baseline.load(
            REPO_ROOT / "tools" / "daisylint" / "baseline.json"
        )
        offending = [
            e for e in baseline.entries.values()
            if e.get("code") in dl.NEVER_BASELINE
        ]
        assert offending == []


class TestRunAndCli:
    def _write_fixture(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src" / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text("def f(xs=[]):\n    return xs\n")
        return tmp_path

    def test_run_reports_new_findings(self, tmp_path):
        root = self._write_fixture(tmp_path)
        result = dl.run([Path("src")], root)
        assert result.exit_code == 1
        assert codes_of([f for _, f in result.new]) == ["DL006"]

    def test_run_with_baseline_is_clean_and_flags_stale(self, tmp_path):
        root = self._write_fixture(tmp_path)
        first = dl.run([Path("src")], root)
        baseline = dl.Baseline.from_findings(first.new)
        second = dl.run([Path("src")], root, baseline=baseline)
        assert second.exit_code == 0
        assert len(second.matched) == 1
        # Fix the defect: the baseline entry goes stale, exit stays 0.
        fixture = root / "src" / "repro" / "engine" / "fixture.py"
        fixture.write_text("def f(xs=None):\n    return xs\n")
        third = dl.run([Path("src")], root, baseline=baseline)
        assert third.exit_code == 0
        assert len(third.stale) == 1

    def test_cli_exit_codes_and_baseline_write(self, tmp_path, capsys):
        root = self._write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv = ["src", "--root", str(root / "src"), "--baseline", str(baseline)]
        # Findings are repo-relative to --root; point root at the fixture tree.
        rc = cli.main(["--root", str(root), "--baseline", str(baseline), "src"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DL006" in out and "1 new finding(s)" in out
        rc = cli.main(
            ["--root", str(root), "--baseline", str(baseline), "--write-baseline", "src"]
        )
        assert rc == 0
        assert baseline.exists()
        rc = cli.main(["--root", str(root), "--baseline", str(baseline), "src"])
        assert rc == 0
        assert "0 new finding(s), 1 baselined" in capsys.readouterr().out
        del argv

    def test_cli_refuses_to_baseline_dl001(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "detection"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text("s = {1, 2}\nxs = list(s)\n")
        baseline = tmp_path / "baseline.json"
        rc = cli.main(
            ["--root", str(tmp_path), "--baseline", str(baseline),
             "--write-baseline", "src"]
        )
        assert rc == 2
        assert not baseline.exists()
        assert "DL001" in capsys.readouterr().err

    def test_cli_json_output(self, tmp_path, capsys):
        root = self._write_fixture(tmp_path)
        report = tmp_path / "report.json"
        rc = cli.main(
            ["--root", str(root), "--no-baseline", "--json-output", str(report),
             "--format", "json", "src"]
        )
        assert rc == 1
        payload = json.loads(report.read_text())
        assert payload["total_findings"] == 1
        assert payload["new"][0]["code"] == "DL006"
        assert "DL006" in payload["rules"]
        # stdout carries the same JSON document
        assert json.loads(capsys.readouterr().out)["total_findings"] == 1

    def test_cli_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in sorted(dl.RULES):
            assert code in out

    def test_cli_parse_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        rc = cli.main(["--root", str(tmp_path), "--no-baseline", str(bad)])
        assert rc == 2
        assert "cannot lint" in capsys.readouterr().err


class TestMetaGate:
    """The repo's own source must lint clean against the checked-in baseline."""

    def test_src_lints_clean_modulo_baseline(self):
        env = dict(os.environ)
        proc = subprocess.run(
            [sys.executable, "-m", "tools.daisylint", "src"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_src_has_zero_baselined_dl001_dl002(self):
        # Belt and braces on top of Baseline.from_findings' refusal.
        result = dl.run(
            [Path("src")], REPO_ROOT,
            baseline=dl.Baseline.load(
                REPO_ROOT / "tools" / "daisylint" / "baseline.json"
            ),
        )
        assert result.exit_code == 0
        baselined = {f.code for _, f in result.matched}
        assert not (baselined & set(dl.NEVER_BASELINE))


_HASHSEED_SCRIPT = """
from repro.detection.maintenance import (
    MaintenancePolicy, matrix_fingerprint, sync_matrix,
)
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.constraints import DenialConstraint, Predicate
from repro.engine.stats import WorkCounter
from repro.relation import ColumnType, Relation

rel = Relation.from_rows(
    [
        ("orderkey", ColumnType.INT),
        ("price", ColumnType.FLOAT),
        ("discount", ColumnType.FLOAT),
    ],
    [(i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6)) for i in range(96)],
    name="lineorder",
)
dc = DenialConstraint(
    [
        Predicate(0, "price", "<", 1, "price"),
        Predicate(0, "discount", ">", 1, "discount"),
    ],
    name="dc_price_discount",
)
matrix = ThetaJoinMatrix(rel, dc, sqrt_p=4, counter=WorkCounter(), backend="columnar")
matrix.check_full()
# Touch BOTH constraint attributes across several stripes so the
# touched-attribute and touched-stripe sets have more than one member —
# the iteration orders DL001 forced through sorted().
updates = {
    (3, "price"): 5000.0,
    (40, "discount"): 0.9,
    (41, "price"): 4500.0,
    (90, "discount"): 0.8,
}
sync_matrix(matrix, updates, MaintenancePolicy(mode="patch"))
violations = matrix.check_full()
print(matrix_fingerprint(matrix, include_sorted=True))
print(sorted(map(repr, violations)) if isinstance(violations, (list, set)) else repr(violations))
"""


class TestHashSeedRegression:
    """Regression lock for the DL001 fixes in detection/maintenance.py.

    Before the sorted() wraps, patch maintenance iterated raw string sets
    (touched attributes / stripe identities), so the patched structures
    could depend on PYTHONHASHSEED.  The same scenario must now produce
    byte-identical output under different hash seeds.
    """

    def _run(self, seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_patched_matrix_identical_across_hash_seeds(self):
        outputs = {self._run(seed) for seed in ("1", "4242")}
        assert len(outputs) == 1
