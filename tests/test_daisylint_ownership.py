"""daisylint DL1xx ownership rules, the whole-program model, and the
--jobs/--cache/--check-baseline CLI mechanics.

Rule fixtures are linted at pretend engine paths (``src/repro/...``) the
same way ``tests/test_daisylint.py`` does for the file rules; project
rules additionally get multi-module fixtures exercising import
resolution, base-class seam inheritance, and Session reachability.  The
seeded-bug test at the bottom is the *static* half of the two-layer
proof: it lints ``tests/fixtures/seeded_race.py`` — the very module
``tests/test_witness.py`` imports to make the runtime witness fire — and
asserts DL101/DL102 flag the same functions.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.daisylint import cli  # noqa: E402
from tools.daisylint import core as dl  # noqa: E402
from tools.daisylint import ownership_rules  # noqa: E402  (registers DL10x)
from tools.daisylint import rules as dl_rules  # noqa: E402  (registers DL00x)
from tools.daisylint.cache import FileCache  # noqa: E402
from tools.daisylint.project import (  # noqa: E402
    ModuleSummary,
    ProjectModel,
    module_name_for,
    seam_matches,
    site_candidates,
    site_in_seams,
    summarize_module,
)

SEEDED_FIXTURE = Path(__file__).resolve().parent / "fixtures" / "seeded_race.py"
ISOLATION_FIXTURE = (
    Path(__file__).resolve().parent / "fixtures" / "seeded_isolation.py"
)


def summarize(source: str, relpath: str) -> ModuleSummary:
    module = dl.ModuleInfo.parse(Path(relpath), relpath, textwrap.dedent(source))
    return summarize_module(
        module.tree, relpath, module.text, suppressions=module.suppressions
    )


def project_findings(
    sources: dict[str, str], codes: tuple[str, ...]
) -> list[dl.Finding]:
    model = ProjectModel(
        [summarize(src, rel) for rel, src in sources.items()]
    )
    out: list[dl.Finding] = []
    for code in codes:
        out.extend(dl.RULES[code].check_project(model))
    out.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return out


def codes_of(findings) -> list[str]:
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# Shared seam-language helpers (used identically by lint and witness)
# ---------------------------------------------------------------------------


class TestSeamLanguage:
    def test_module_name_for_src_layout(self):
        assert module_name_for("src/repro/core/state.py") == "repro.core.state"
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert module_name_for("tools/daisylint/core.py") == "tools.daisylint.core"

    def test_site_candidates_peel_closures(self):
        site = "repro.parallel.pool.ExecutorPool.run.<locals>.task"
        assert list(site_candidates(site)) == [
            site, "repro.parallel.pool.ExecutorPool.run"
        ]

    def test_seam_matches_on_dotted_boundary_only(self):
        assert seam_matches("TableState.mark_seen",
                            "repro.core.state.TableState.mark_seen")
        assert not seam_matches("State.mark_seen",
                                "repro.core.state.TableState.mark_seen")
        assert not seam_matches("", "repro.core.state.TableState.mark_seen")

    def test_init_methods_require_the_class_in_the_site(self):
        # __init__ of *another* class is not this class's construction.
        assert site_in_seams(
            "repro.m.Owner.__init__", (), ("__init__",), "Owner"
        )
        assert not site_in_seams(
            "repro.m.Other.__init__", (), ("__init__",), "Owner"
        )


# ---------------------------------------------------------------------------
# DL101 — shared_engine_state seam enforcement
# ---------------------------------------------------------------------------


SHARED_CLASS = """
    from repro._ownership import shared_engine_state

    @shared_engine_state
    class Matrix:
        MUTATED_UNDER = {"rows": ("Matrix.rebuild",)}

        def __init__(self):
            self.rows = []

        def rebuild(self):
            self.rows = [1]
"""


class TestDL101:
    def test_write_inside_seam_and_init_is_clean(self):
        findings = project_findings(
            {"src/repro/engine/m.py": SHARED_CLASS}, ("DL101",)
        )
        assert findings == []

    def test_write_outside_seam_fires(self):
        source = SHARED_CLASS + """
        def sneaky(m: Matrix):
            m.rows = [2]
    """
        findings = project_findings(
            {"src/repro/engine/m.py": source}, ("DL101",)
        )
        assert codes_of(findings) == ["DL101"]
        assert "outside its declared seam" in findings[0].message

    def test_undeclared_attribute_fires(self):
        source = SHARED_CLASS + """
        def sneaky(m: Matrix):
            m.cols = [2]
    """
        findings = project_findings(
            {"src/repro/engine/m.py": source}, ("DL101",)
        )
        assert codes_of(findings) == ["DL101"]
        assert "no MUTATED_UNDER seam declaration" in findings[0].message

    def test_cross_module_write_resolves_through_imports(self):
        caller = """
            from repro.engine.m import Matrix

            def helper(m: Matrix):
                m.rows = [3]
        """
        findings = project_findings(
            {
                "src/repro/engine/m.py": SHARED_CLASS,
                "src/repro/engine/caller.py": caller,
            },
            ("DL101",),
        )
        assert codes_of(findings) == ["DL101"]
        assert findings[0].path == "src/repro/engine/caller.py"

    def test_seam_method_on_subclass_inherits_contract(self):
        source = SHARED_CLASS + """
        class Sparse(Matrix):
            def corrupt(self):
                self.rows = [9]
    """
        findings = project_findings(
            {"src/repro/engine/m.py": source}, ("DL101",)
        )
        assert codes_of(findings) == ["DL101"]

    def test_accessor_alias_mutation_attributed_to_caller(self):
        source = """
            from repro._ownership import shared_engine_state

            @shared_engine_state
            class State:
                MUTATED_UNDER = {"seen": ("State.mark",)}
                MUTATING_ACCESSORS = {"seen_for": "seen"}

                def __init__(self):
                    self.seen = {}

                def seen_for(self, key):
                    return self.seen.setdefault(key, set())

                def mark(self, key, t):
                    self.seen_for(key).add(t)

            def rogue(state: State, key, t):
                state.seen_for(key).add(t)
        """
        findings = project_findings(
            {"src/repro/engine/s.py": source}, ("DL101",)
        )
        assert codes_of(findings) == ["DL101"]
        assert "rogue" in findings[0].message

    def test_suppression_comment_silences_via_run(self, tmp_path):
        source = textwrap.dedent(SHARED_CLASS) + textwrap.dedent("""
        def sneaky(m: Matrix):
            m.rows = [2]  # daisylint: disable=DL101 - fixture exemption
        """)
        target = tmp_path / "src" / "repro" / "engine"
        target.mkdir(parents=True)
        (target / "m.py").write_text(source)
        result = dl.run([tmp_path / "src"], tmp_path)
        assert [f.code for f in result.findings] == []


# ---------------------------------------------------------------------------
# DL102 — immutable_after_init
# ---------------------------------------------------------------------------


class TestDL102:
    def test_post_init_write_fires_and_init_is_clean(self):
        source = """
            from repro._ownership import immutable_after_init

            @immutable_after_init
            class Plan:
                def __init__(self):
                    self.steps = ()

            def patch(plan: Plan):
                plan.steps = (1,)
        """
        findings = project_findings(
            {"src/repro/engine/p.py": source}, ("DL102",)
        )
        assert codes_of(findings) == ["DL102"]
        assert "after construction" in findings[0].message

    def test_declared_builder_counts_as_construction(self):
        source = """
            from repro._ownership import immutable_after_init

            @immutable_after_init(init_methods=("freeze",))
            class Plan:
                def __init__(self):
                    self.steps = ()

                def freeze(self):
                    self.steps = (1,)
        """
        findings = project_findings(
            {"src/repro/engine/p.py": source}, ("DL102",)
        )
        assert findings == []


# ---------------------------------------------------------------------------
# DL103 — Session-reachable classes must declare ownership
# ---------------------------------------------------------------------------


DL103_SOURCES = {
    "src/repro/api/session.py": """
        from repro.engine.cache import PlanCache

        class Session:
            def __init__(self):
                self.cache = PlanCache()
    """,
    "src/repro/engine/cache.py": """
        class PlanCache:
            def __init__(self):
                self.plans = {}

            def store(self, key, plan):
                self.plans = {**self.plans, key: plan}
    """,
}


class TestDL103:
    def test_unannotated_mutating_reachable_class_fires(self):
        findings = project_findings(DL103_SOURCES, ("DL103",))
        assert codes_of(findings) == ["DL103"]
        assert "PlanCache" in findings[0].message

    def test_annotated_class_is_clean(self):
        sources = dict(DL103_SOURCES)
        sources["src/repro/engine/cache.py"] = """
            from repro._ownership import session_owned

            @session_owned
            class PlanCache:
                def __init__(self):
                    self.plans = {}

                def store(self, key, plan):
                    self.plans = {**self.plans, key: plan}
        """
        assert project_findings(sources, ("DL103",)) == []

    def test_mutation_free_class_needs_no_annotation(self):
        sources = dict(DL103_SOURCES)
        sources["src/repro/engine/cache.py"] = """
            class PlanCache:
                def __init__(self):
                    self.plans = {}

                def get(self, key):
                    return self.plans.get(key)
        """
        assert project_findings(sources, ("DL103",)) == []

    def test_unreachable_class_needs_no_annotation(self):
        sources = {"src/repro/engine/cache.py": DL103_SOURCES[
            "src/repro/engine/cache.py"
        ]}
        assert project_findings(sources, ("DL103",)) == []


# ---------------------------------------------------------------------------
# DL104 — class/module-level mutable state
# ---------------------------------------------------------------------------


class TestDL104:
    def test_class_and_module_mutables_fire(self):
        source = """
            REGISTRY = {}

            class Pool:
                workers = []
        """
        findings = project_findings(
            {"src/repro/engine/pool.py": source}, ("DL104",)
        )
        assert codes_of(findings) == ["DL104", "DL104"]

    def test_immutable_and_declaration_tables_are_exempt(self):
        source = """
            from types import MappingProxyType

            FROZEN = frozenset({1})
            TABLE = MappingProxyType({"a": 1})
            _NAMES = ("x", "y")

            class Pool:
                MUTATED_UNDER = {"x": ("Pool.run",)}
                MUTATING_ACCESSORS = {"get_x": "x"}
                __slots__ = ["x"]
        """
        findings = project_findings(
            {"src/repro/engine/pool.py": source}, ("DL104",)
        )
        assert findings == []

    def test_outside_engine_prefix_is_out_of_scope(self):
        findings = project_findings(
            {"tools/daisylint/thing.py": "REGISTRY = {}\n"}, ("DL104",)
        )
        assert findings == []


# ---------------------------------------------------------------------------
# The seeded bug: static half (dynamic half in tests/test_witness.py)
# ---------------------------------------------------------------------------


class TestSeededBugStatic:
    def test_dl101_and_dl102_fire_on_the_seeded_fixture(self):
        source = SEEDED_FIXTURE.read_text()
        findings = project_findings(
            {"src/repro/engine/seeded_race.py": source}, ("DL101", "DL102")
        )
        by_code = {f.code: f for f in findings}
        assert sorted(by_code) == ["DL101", "DL102"]
        assert "SeededCursor.position" in by_code["DL101"].message
        assert "rogue_write" in by_code["DL101"].message
        assert "SeededFrozen" in by_code["DL102"].message
        assert "corrupt" in by_code["DL102"].message

    def test_legitimate_seam_write_is_not_flagged(self):
        source = SEEDED_FIXTURE.read_text()
        findings = project_findings(
            {"src/repro/engine/seeded_race.py": source}, ("DL101",)
        )
        assert all(
            "self.position += 1" not in f.source_line for f in findings
        )


class TestSeededIsolationStatic:
    """Static half of the torn-read proof: daisylint DL101 flags the same
    out-of-seam epoch/marker writes the runtime witness and the snapshot
    primitives convict dynamically (``tests/test_service.py``)."""

    def test_dl101_fires_on_every_torn_bump_write(self):
        source = ISOLATION_FIXTURE.read_text()
        findings = project_findings(
            {"src/repro/engine/seeded_isolation.py": source}, ("DL101",)
        )
        bump_findings = [f for f in findings if "torn_bump" in f.message]
        assert len(bump_findings) == 3
        attrs = " ".join(f.message for f in bump_findings)
        assert "SeededEpochTable.write_in_progress" in attrs
        assert "SeededEpochTable.data_epoch" in attrs

    def test_the_declared_apply_seam_is_not_flagged(self):
        source = ISOLATION_FIXTURE.read_text()
        findings = project_findings(
            {"src/repro/engine/seeded_isolation.py": source}, ("DL101",)
        )
        # Every finding sits in the seeded rogue function; the identical
        # writes inside the declared ``apply`` seam produce none.
        assert findings, "the seeded bug must fire"
        assert all("mutated at" in f.message for f in findings)
        assert all(
            f.message.partition("mutated at ")[2].startswith(
                "repro.engine.seeded_isolation.torn_bump"
            )
            for f in findings
        )


# ---------------------------------------------------------------------------
# CLI: --jobs / --cache parity, --check-baseline
# ---------------------------------------------------------------------------


def _fake_repo(tmp_path: Path) -> Path:
    engine = tmp_path / "src" / "repro" / "engine"
    engine.mkdir(parents=True)
    (engine / "m.py").write_text(textwrap.dedent(SHARED_CLASS) + textwrap.dedent("""
    def sneaky(m: Matrix):
        m.rows = [2]
    """))
    (engine / "other.py").write_text("STATE = {}\n")
    (engine / "clean.py").write_text("def ok() -> int:\n    return 1\n")
    return tmp_path


def _cli_json(tmp_path: Path, out_name: str, *extra: str) -> tuple[int, dict]:
    out = tmp_path / out_name
    code = cli.main([
        "src", "--root", str(tmp_path), "--no-baseline",
        "--json-output", str(out), *extra,
    ])
    return code, json.loads(out.read_text())


class TestCliParity:
    def test_jobs_and_cache_runs_are_byte_identical(self, tmp_path):
        repo = _fake_repo(tmp_path)
        cache_file = tmp_path / "cache.json"
        code1, serial = _cli_json(repo, "serial.json")
        code2, jobs = _cli_json(repo, "jobs.json", "--jobs", "2")
        code3, cold = _cli_json(
            repo, "cold.json", "--cache", str(cache_file)
        )
        code4, warm = _cli_json(
            repo, "warm.json", "--cache", str(cache_file)
        )
        assert code1 == code2 == code3 == code4 == 1
        assert serial == jobs == cold == warm
        assert {f["code"] for f in serial["new"]} == {"DL101", "DL104"}

    def test_warm_cache_actually_hits(self, tmp_path):
        repo = _fake_repo(tmp_path)
        cache_file = tmp_path / "cache.json"
        _cli_json(repo, "cold.json", "--cache", str(cache_file))
        cache = FileCache.load(cache_file)
        for path, rel in dl.iter_python_files([repo / "src"], repo):
            assert cache.get(path, rel) is not None, rel
        assert cache.hits == 3

    def test_edited_file_invalidates_its_entry(self, tmp_path):
        repo = _fake_repo(tmp_path)
        cache_file = tmp_path / "cache.json"
        _cli_json(repo, "cold.json", "--cache", str(cache_file))
        edited = repo / "src" / "repro" / "engine" / "clean.py"
        edited.write_text("def ok() -> int:\n    return 2\n")
        cache = FileCache.load(cache_file)
        assert cache.get(edited, "src/repro/engine/clean.py") is None

    def test_check_baseline_prunes_stale_entries(self, tmp_path):
        repo = _fake_repo(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        dl.Baseline({"deadbeefdeadbeef": {
            "code": "DL104", "path": "src/repro/engine/gone.py",
            "line": 1, "col": 0, "message": "gone", "source_line": "",
        }}).save(baseline_path)
        code = cli.main([
            "src", "--root", str(repo),
            "--baseline", str(baseline_path), "--check-baseline",
        ])
        assert code == 1
        pruned = json.loads(baseline_path.read_text())
        assert "deadbeefdeadbeef" not in pruned["entries"]

    def test_check_baseline_passes_when_every_entry_fires(self, tmp_path):
        repo = _fake_repo(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        result = dl.run([repo / "src"], repo)
        dl.Baseline.from_findings(
            [(d, f) for d, f in dl.fingerprint_findings(result.findings)
             if f.code not in dl.NEVER_BASELINE]
        ).save(baseline_path)
        code = cli.main([
            "src", "--root", str(repo),
            "--baseline", str(baseline_path), "--check-baseline",
        ])
        assert code == 0
