"""Tests for the synthetic dataset generators and workload builders."""

import pytest

from repro.constraints import FunctionalDependency
from repro.datasets import (
    airquality,
    hospital,
    inject_fd_errors,
    inject_numeric_errors,
    nestle,
    ssb,
    workloads,
)
from repro.detection import detect_fd_violations
from repro.errors import DatasetError
from repro.query import parse_sql
from repro.relation import ColumnType, Relation


class TestErrorInjection:
    def make_rel(self):
        return Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.INT)],
            [(i % 10, i % 10) for i in range(100)],
        )

    def test_injects_detectable_violations(self):
        rel = self.make_rel()
        fd = FunctionalDependency("k", "v")
        dirty, report = inject_fd_errors(rel, fd, group_fraction=0.5, seed=1)
        assert report.edited_cells > 0
        detection = detect_fd_violations(dirty, fd)
        assert detection.group_count() == report.affected_groups

    def test_ground_truth_restores_clean(self):
        rel = self.make_rel()
        fd = FunctionalDependency("k", "v")
        dirty, report = inject_fd_errors(rel, fd, group_fraction=1.0, seed=2)
        restored = dirty.update_cells(dict(report.ground_truth))
        assert not detect_fd_violations(restored, fd)

    def test_group_fraction_controls_scale(self):
        rel = self.make_rel()
        fd = FunctionalDependency("k", "v")
        _, low = inject_fd_errors(rel, fd, group_fraction=0.2, seed=3)
        _, high = inject_fd_errors(rel, fd, group_fraction=1.0, seed=3)
        assert low.affected_groups < high.affected_groups

    def test_deterministic_by_seed(self):
        rel = self.make_rel()
        fd = FunctionalDependency("k", "v")
        _, a = inject_fd_errors(rel, fd, seed=5)
        _, b = inject_fd_errors(rel, fd, seed=5)
        assert a.ground_truth == b.ground_truth

    def test_invalid_fraction_rejected(self):
        rel = self.make_rel()
        fd = FunctionalDependency("k", "v")
        with pytest.raises(DatasetError):
            inject_fd_errors(rel, fd, group_fraction=2.0)

    def test_numeric_errors(self):
        rel = Relation.from_rows(
            [("x", ColumnType.FLOAT)], [(float(i),) for i in range(1, 51)]
        )
        dirty, report = inject_numeric_errors(rel, "x", cell_fraction=0.2, seed=4)
        assert report.edited_cells == 10
        for (tid, attr), original in report.ground_truth.items():
            assert dirty.row_by_tid(tid).values[0] != original


class TestSsb:
    def test_clean_lineorder_satisfies_fd(self):
        rel = ssb.clean_lineorder(500, 50, 10, seed=1)
        fd = FunctionalDependency("orderkey", "suppkey")
        assert not detect_fd_violations(rel, fd)

    def test_dirty_lineorder_violates(self):
        rel, fd, report = ssb.dirty_lineorder(500, 50, 10, seed=1)
        assert detect_fd_violations(rel, fd)
        assert report.edited_cells > 0

    def test_cardinalities(self):
        rel = ssb.clean_lineorder(1000, 100, 20, seed=1)
        assert len(rel.distinct_values("orderkey")) == 100
        assert len(rel.distinct_values("suppkey")) <= 20

    def test_error_group_fraction(self):
        _, fd, r20 = ssb.dirty_lineorder(
            1000, 100, 20, error_group_fraction=0.2, seed=1
        )
        _, _, r80 = ssb.dirty_lineorder(
            1000, 100, 20, error_group_fraction=0.8, seed=1
        )
        assert r20.affected_groups < r80.affected_groups

    def test_full_instance(self):
        inst = ssb.generate_instance(num_rows=300, num_orderkeys=30, num_suppkeys=10)
        assert len(inst.supplier) == 20  # 10 suppliers × 2 duplicate entries
        assert len(inst.part) == 200
        assert inst.lineorder.schema.names[0] == "orderkey"

    def test_supplier_fd(self):
        rel, fd, report = ssb.dirty_supplier(50, error_fraction=0.2, seed=2)
        assert fd.lhs == ("address",)
        assert detect_fd_violations(rel, fd)


class TestHospital:
    def test_clean_satisfies_all_rules(self):
        rel = hospital.clean_hospital(300, seed=1)
        for fd in hospital.hospital_rules():
            assert not detect_fd_violations(rel, fd), str(fd)

    def test_instance_has_violations_per_rule(self):
        inst = hospital.generate_instance(num_rows=300, seed=1)
        assert inst.ground_truth
        violated = [
            fd.name for fd in inst.rules if detect_fd_violations(inst.dirty, fd)
        ]
        assert "phi1" in violated

    def test_master_matches_ground_truth(self):
        inst = hospital.generate_instance(num_rows=300, seed=1)
        for (tid, attr), value in inst.ground_truth.items():
            idx = inst.master.schema.index_of(attr)
            assert inst.master.row_by_tid(tid).values[idx] == value


class TestNestle:
    def test_clean_satisfies_fd(self):
        rel = nestle.clean_products(400, 40, seed=1)
        fd = FunctionalDependency("material", "category")
        assert not detect_fd_violations(rel, fd)

    def test_dirty_has_high_conflict_rate(self):
        inst = nestle.generate_instance(400, 40, conflict_fraction=0.95, seed=1)
        detection = detect_fd_violations(inst.dirty, inst.fd)
        assert detection.group_count() >= 0.9 * 40

    def test_coffee_queries_parse(self):
        for sql in nestle.coffee_queries(10):
            query = parse_sql(sql)
            assert query.tables == ["nestle"]


class TestAirQuality:
    def test_clean_satisfies_composite_fd(self):
        rel = airquality.clean_measurements(500, num_states=10, seed=1)
        assert not detect_fd_violations(rel, airquality.airquality_fd())

    def test_violation_levels(self):
        low = airquality.generate_instance(500, num_states=10, violation_level="low", seed=1)
        high = airquality.generate_instance(500, num_states=10, violation_level="high", seed=1)
        low_groups = detect_fd_violations(low.dirty, low.fd).group_count()
        high_groups = detect_fd_violations(high.dirty, high.fd).group_count()
        assert low_groups < high_groups

    def test_queries_parse_and_groupby(self):
        for sql in airquality.state_co_queries(5):
            query = parse_sql(sql)
            assert query.group_by and query.aggregates


class TestWorkloads:
    def test_range_queries_cover_domain(self):
        queries = workloads.range_queries("t", "k", 100, 10)
        assert len(queries) == 10
        parsed = [parse_sql(q) for q in queries]
        lows = [q.conditions[0].value for q in parsed]
        highs = [q.conditions[1].value for q in parsed]
        assert lows[0] == 0 and highs[-1] == 100
        # non-overlapping and contiguous
        assert all(highs[i] == lows[i + 1] for i in range(9))

    def test_random_selectivity_non_overlapping(self):
        queries = workloads.random_selectivity_queries("t", "k", 50, 8, seed=1)
        assert len(queries) == 8
        for q in queries:
            parse_sql(q)

    def test_join_queries_parse(self):
        for sql in workloads.join_queries(5, 100):
            q = parse_sql(sql)
            assert q.is_join_query()

    def test_mixed_workload_contains_joins(self):
        queries = workloads.mixed_workload(20, 100, seed=1)
        parsed = [parse_sql(q) for q in queries]
        assert any(q.is_join_query() for q in parsed)
        assert any(not q.is_join_query() for q in parsed)

    def test_ssb_complex_variants(self):
        q1 = parse_sql(workloads.ssb_q1(0, 10))
        assert len(q1.tables) == 2
        q2 = parse_sql(workloads.ssb_q2(0, 10))
        assert len(q2.tables) == 4 and q2.group_by
        q3 = parse_sql(workloads.ssb_q3(0, 10))
        assert len(q3.tables) == 5

    def test_ssb_complex_workload_bad_variant(self):
        with pytest.raises(ValueError):
            workloads.ssb_complex_workload("q9", 5, 100)
