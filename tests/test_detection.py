"""Tests for FD group detection and the theta-join matrix."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import DenialConstraint, Predicate
from repro.detection import (
    ThetaJoinMatrix,
    decide_cleaning,
    detect_fd_violations,
    estimate_errors,
    violating_lhs_keys,
)
from repro.engine import WorkCounter
from repro.errors import ConstraintError
from repro.relation import ColumnType, Relation


def salary_tax_dc() -> DenialConstraint:
    return DenialConstraint(
        [Predicate(0, "salary", "<", 1, "salary"), Predicate(0, "tax", ">", 1, "tax")],
        name="dc_sal_tax",
    )


def make_salary_relation(rows):
    return Relation.from_rows(
        [("salary", ColumnType.FLOAT), ("tax", ColumnType.FLOAT)], rows
    )


class TestFdDetection:
    def test_finds_violating_groups(self, cities_relation, zip_city_fd):
        report = detect_fd_violations(cities_relation, zip_city_fd)
        keys = {g.lhs_key for g in report.groups}
        assert keys == {(9001,), (10001,)}

    def test_violating_tids(self, cities_relation, zip_city_fd):
        report = detect_fd_violations(cities_relation, zip_city_fd)
        assert report.violating_tids() == {0, 1, 2, 3, 4}

    def test_violation_pairs(self, cities_relation, zip_city_fd):
        report = detect_fd_violations(cities_relation, zip_city_fd)
        pairs = set(report.violation_pairs())
        assert (0, 1) in pairs and (1, 2) in pairs and (3, 4) in pairs
        assert (0, 2) not in pairs

    def test_scope_restriction(self, cities_relation, zip_city_fd):
        report = detect_fd_violations(cities_relation, zip_city_fd, tids={0, 1})
        assert {g.lhs_key for g in report.groups} == {(9001,)}

    def test_clean_relation_no_groups(self, zip_city_fd):
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "A"), (1, "A"), (2, "B")],
        )
        report = detect_fd_violations(rel, zip_city_fd)
        assert not report

    def test_originals_override_current_values(self, cities_relation, zip_city_fd):
        # Pretend tid 1's city was already repaired; grouping must use the
        # original value.
        originals = {(1, "city"): "San Francisco"}
        report = detect_fd_violations(
            cities_relation, zip_city_fd, originals=originals
        )
        assert (9001,) in {g.lhs_key for g in report.groups}

    def test_violating_lhs_keys(self, cities_relation, zip_city_fd):
        assert violating_lhs_keys(cities_relation, zip_city_fd) == {(9001,), (10001,)}

    def test_work_charged(self, cities_relation, zip_city_fd):
        wc = WorkCounter()
        detect_fd_violations(cities_relation, zip_city_fd, counter=wc)
        assert wc.tuples_scanned == 5


class TestThetaJoinMatrix:
    def test_rejects_non_binary(self):
        dc = DenialConstraint([Predicate(0, "a", ">", constant=1)])
        rel = make_salary_relation([(1.0, 0.1)])
        with pytest.raises(ConstraintError):
            ThetaJoinMatrix(rel, dc)

    def test_finds_paper_violation(self, salary_tax_relation):
        matrix = ThetaJoinMatrix(salary_tax_relation, salary_tax_dc(), sqrt_p=2)
        pairs = {(v.t1, v.t2) for v in matrix.check_full()}
        assert pairs == {(2, 1)}

    def test_full_check_equals_bruteforce(self):
        import random

        rng = random.Random(0)
        rows = [(rng.uniform(0, 100), rng.uniform(0, 1)) for _ in range(60)]
        rel = make_salary_relation(rows)
        dc = salary_tax_dc()
        matrix = ThetaJoinMatrix(rel, dc, sqrt_p=4)
        found = {(v.t1, v.t2) for v in matrix.check_full()}
        brute = set(dc.find_violations(rel))
        assert found == brute

    def test_incremental_no_rechecking(self, salary_tax_relation):
        matrix = ThetaJoinMatrix(salary_tax_relation, salary_tax_dc(), sqrt_p=2)
        first = matrix.check_partial({0, 1, 2})
        cells_after_first = set(matrix.checked_cells)
        second = matrix.check_partial({0, 1, 2})
        assert second == []  # nothing left to check for these stripes
        assert set(matrix.checked_cells) == cells_after_first

    def test_partial_then_full_equals_full(self):
        import random

        rng = random.Random(1)
        rows = [(rng.uniform(0, 100), rng.uniform(0, 1)) for _ in range(50)]
        rel = make_salary_relation(rows)
        dc = salary_tax_dc()
        m1 = ThetaJoinMatrix(rel, dc, sqrt_p=4)
        part = {(v.t1, v.t2) for v in m1.check_partial(set(range(10)))}
        rest = {(v.t1, v.t2) for v in m1.check_full()}
        m2 = ThetaJoinMatrix(rel, dc, sqrt_p=4)
        full = {(v.t1, v.t2) for v in m2.check_full()}
        assert part | rest == full
        assert part & rest == set()  # no duplicate checking

    def test_support_grows(self, salary_tax_relation):
        matrix = ThetaJoinMatrix(salary_tax_relation, salary_tax_dc(), sqrt_p=2)
        assert matrix.support() == 0.0
        matrix.check_full()
        assert matrix.support() == 1.0

    def test_pruning_counted(self):
        # Monotone data (no violations): boxes should prune most cells.
        rows = [(float(i), float(i) / 100.0) for i in range(100)]
        rel = make_salary_relation(rows)
        wc = WorkCounter()
        matrix = ThetaJoinMatrix(rel, salary_tax_dc(), sqrt_p=8, counter=wc)
        assert matrix.check_full() == []
        assert wc.partitions_pruned > 0

    def test_stripes_overlapping_range(self, salary_tax_relation):
        matrix = ThetaJoinMatrix(salary_tax_relation, salary_tax_dc(), sqrt_p=2)
        stripes = matrix.stripes_overlapping_range(900.0, 1100.0)
        assert stripes  # the 1000-salary tuple's stripe


class TestEstimator:
    def test_no_errors_on_monotone_data(self):
        rows = [(float(i), float(i) / 100.0) for i in range(50)]
        rel = make_salary_relation(rows)
        matrix = ThetaJoinMatrix(rel, salary_tax_dc(), sqrt_p=5)
        estimates = estimate_errors(matrix)
        assert sum(e.estimated_errors for e in estimates) == 0.0

    def test_errors_estimated_on_shuffled_tax(self):
        import random

        rng = random.Random(2)
        rows = [(float(i), rng.uniform(0, 1)) for i in range(50)]
        rel = make_salary_relation(rows)
        matrix = ThetaJoinMatrix(rel, salary_tax_dc(), sqrt_p=5)
        estimates = estimate_errors(matrix)
        assert sum(e.estimated_errors for e in estimates) > 0.0

    def test_decision_full_on_dirty_data(self):
        import random

        rng = random.Random(3)
        rows = [(float(i), rng.uniform(0, 1)) for i in range(100)]
        rel = make_salary_relation(rows)
        matrix = ThetaJoinMatrix(rel, salary_tax_dc(), sqrt_p=5)
        decision = decide_cleaning(matrix, list(range(10)), rel, threshold=0.05)
        assert decision.full_cleaning
        assert decision.error_rate > 0.05

    def test_decision_partial_on_clean_data(self):
        rows = [(float(i), float(i) / 100.0) for i in range(100)]
        rel = make_salary_relation(rows)
        matrix = ThetaJoinMatrix(rel, salary_tax_dc(), sqrt_p=5)
        decision = decide_cleaning(matrix, list(range(10)), rel, threshold=0.05)
        assert not decision.full_cleaning
        assert decision.error_rate == 0.0


# ---------------------------------------------------------------------------
# Property: matrix detection == brute force on random data
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        min_size=2,
        max_size=25,
    ),
    st.integers(1, 5),
)
def test_matrix_equals_bruteforce_property(rows, sqrt_p):
    rel = make_salary_relation(rows)
    dc = salary_tax_dc()
    matrix = ThetaJoinMatrix(rel, dc, sqrt_p=sqrt_p)
    found = {(v.t1, v.t2) for v in matrix.check_full()}
    brute = set(dc.find_violations(rel))
    assert found == brute
