"""Docs gate: every guide's links resolve and every snippet runs.

Two checks over ``README.md`` + ``docs/*.md``:

* **Link check** — every relative markdown link target (files, other
  guides, anchors aside) must exist in the repo, so the docs can't drift
  from renames silently.
* **Snippet check** — every fenced ``python`` block is executed in a fresh
  namespace from the repo root.  The convention (stated here, enforced by
  this test): ``python`` blocks are *self-contained, runnable examples*
  against the bundled fixtures; illustrative pseudo-code or output belongs
  in ``text`` / ``console`` / ``sql`` fences instead.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")


def _doc_ids():
    return [str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]


def _extract_blocks(path: Path, language: str) -> list[tuple[int, str]]:
    """(start line, source) of every fenced block of ``language``."""
    blocks = []
    lines = path.read_text().splitlines()
    inside = False
    start = 0
    current: list[str] = []
    for i, line in enumerate(lines, start=1):
        fence = _FENCE.match(line.strip())
        if fence and not inside:
            inside = True
            lang = fence.group(1)
            start = i
            current = []
        elif line.strip() == "```" and inside:
            inside = False
            if lang == language:
                blocks.append((start, "\n".join(current)))
        elif inside:
            current.append(line)
    return blocks


def test_docs_exist():
    """The five guides the README defers to are present."""
    for name in (
        "architecture", "paper-mapping", "cost-model", "benchmarks", "kernels"
    ):
        assert (REPO_ROOT / "docs" / f"{name}.md").exists(), name


@pytest.mark.parametrize("doc", _doc_ids())
def test_relative_links_resolve(doc):
    path = REPO_ROOT / doc
    text = path.read_text()
    missing = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            missing.append(target)
    assert not missing, f"{doc}: broken relative links {missing}"


@pytest.mark.parametrize("doc", _doc_ids())
def test_python_snippets_run(doc):
    path = REPO_ROOT / doc
    blocks = _extract_blocks(path, "python")
    for start, source in blocks:
        namespace: dict = {"__name__": f"docsnippet_{path.stem}_{start}"}
        try:
            exec(compile(source, f"{doc}:{start}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{doc} snippet at line {start} failed: {exc!r}")


def test_docs_have_python_snippets():
    """The guides stay executable documentation, not just prose."""
    with_snippets = [
        p.name for p in DOC_FILES if _extract_blocks(p, "python")
    ]
    assert "README.md" in with_snippets
    assert "architecture.md" in with_snippets
    assert "cost-model.md" in with_snippets
