"""Edge-case coverage: empty/degenerate relations, NULLs, adversarial input."""

import pytest

from repro import Daisy
from repro.constraints import DenialConstraint, FunctionalDependency, Predicate
from repro.core import TableState, clean_sigma
from repro.core.relaxation import relax_fd
from repro.detection import ThetaJoinMatrix, detect_fd_violations
from repro.errors import PlanError, QueryError
from repro.probabilistic import PValue
from repro.relation import ColumnType, Relation


class TestEmptyRelations:
    def empty(self):
        return Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], [], name="t"
        )

    def test_detection_on_empty(self):
        assert not detect_fd_violations(self.empty(), FunctionalDependency("a", "b"))

    def test_relaxation_on_empty(self):
        result = relax_fd(self.empty(), set(), FunctionalDependency("a", "b"))
        assert result.extra_tids == set()

    def test_theta_join_on_empty(self):
        dc = DenialConstraint(
            [Predicate(0, "a", "<", 1, "a"), Predicate(0, "b", ">", 1, "b")]
        )
        matrix = ThetaJoinMatrix(self.empty(), dc)
        assert matrix.check_full() == []

    def test_daisy_query_on_empty(self):
        d = Daisy()
        d.register_table("t", self.empty())
        d.add_rule("t", "a -> b")
        result = d.execute("SELECT a FROM t WHERE a = 1")
        assert len(result) == 0

    def test_group_by_on_empty(self):
        out = self.empty().group_by(["a"], [("count", "*", "n")])
        assert len(out) == 0


class TestSingleRow:
    def test_single_row_never_violates_fd(self):
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], [(1, 2)]
        )
        assert not detect_fd_violations(rel, FunctionalDependency("a", "b"))

    def test_single_row_never_violates_binary_dc(self):
        rel = Relation.from_rows(
            [("a", ColumnType.FLOAT), ("b", ColumnType.FLOAT)], [(1.0, 2.0)]
        )
        dc = DenialConstraint(
            [Predicate(0, "a", "<", 1, "a"), Predicate(0, "b", ">", 1, "b")]
        )
        assert ThetaJoinMatrix(rel, dc).check_full() == []


class TestNullHandling:
    def test_null_cells_dont_match_filters(self):
        rel = Relation.from_rows(
            [("a", ColumnType.INT)], [(None,), (1,)], validate=False
        )
        d = Daisy()
        d.register_table("t", rel)
        assert len(d.execute("SELECT a FROM t WHERE a = 1")) == 1
        assert len(d.execute("SELECT a FROM t WHERE a < 5")) == 1

    def test_null_groups_in_fd_detection(self):
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)],
            [(None, 1), (None, 2), (1, 3)],
            validate=False,
        )
        report = detect_fd_violations(rel, FunctionalDependency("a", "b"))
        # NULL keys group together: (None,) has conflicting rhs.
        assert (None,) in {g.lhs_key for g in report.groups}

    def test_nulls_skipped_by_theta_join(self):
        rel = Relation.from_rows(
            [("a", ColumnType.FLOAT), ("b", ColumnType.FLOAT)],
            [(1.0, 0.5), (None, 0.1), (2.0, 0.2)],
            validate=False,
        )
        dc = DenialConstraint(
            [Predicate(0, "a", "<", 1, "a"), Predicate(0, "b", ">", 1, "b")]
        )
        pairs = {(v.t1, v.t2) for v in ThetaJoinMatrix(rel, dc).check_full()}
        assert pairs == {(0, 2)}


class TestAdversarialQueries:
    @pytest.fixture
    def daisy(self):
        d = Daisy()
        d.register_table(
            "t",
            Relation.from_rows(
                [("a", ColumnType.INT), ("b", ColumnType.STRING)],
                [(1, "x")],
                name="t",
            ),
        )
        return d

    def test_unknown_table(self, daisy):
        with pytest.raises(PlanError):
            daisy.execute("SELECT a FROM missing")

    def test_unknown_column(self, daisy):
        with pytest.raises(PlanError):
            daisy.execute("SELECT zzz FROM t")

    def test_empty_result_range(self, daisy):
        assert len(daisy.execute("SELECT a FROM t WHERE a > 100")) == 0

    def test_contradictory_conditions(self, daisy):
        assert len(daisy.execute("SELECT a FROM t WHERE a > 5 AND a < 3")) == 0

    def test_string_comparison_against_int_column(self, daisy):
        # Type-mismatched comparison is NULL-like: no match, no crash.
        assert len(daisy.execute("SELECT a FROM t WHERE a = 'abc'")) == 0

    def test_or_join_rejected(self):
        d = Daisy()
        for name in ("x", "y"):
            d.register_table(
                name,
                Relation.from_rows([("k", ColumnType.INT)], [(1,)], name=name),
            )
        with pytest.raises(QueryError):
            d.execute(
                "SELECT x.k FROM x, y WHERE x.k = y.k OR x.k = 1"
            )


class TestAllIdenticalValues:
    """Degenerate distributions: one group, one value."""

    def test_one_giant_clean_group(self):
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)],
            [(1, 2)] * 50,
        )
        assert not detect_fd_violations(rel, FunctionalDependency("a", "b"))

    def test_one_giant_dirty_group(self):
        rows = [(1, 2)] * 25 + [(1, 3)] * 25
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], rows
        )
        state = TableState(relation=rel)
        fd = FunctionalDependency("a", "b", name="f")
        state.add_rule(fd)
        report = clean_sigma(
            state, set(range(50)), where_attrs=["a"], projection=["b"]
        )
        assert report.errors_fixed == 50
        # 50/50 split: candidates are equiprobable, deterministic tie-break.
        cell = state.relation.row_by_tid(0).values[1]
        assert isinstance(cell, PValue)
        assert set(cell.concrete_values()) == {2, 3}

    def test_constant_attribute_theta_join(self):
        rel = Relation.from_rows(
            [("a", ColumnType.FLOAT), ("b", ColumnType.FLOAT)],
            [(1.0, 1.0)] * 20,
        )
        dc = DenialConstraint(
            [Predicate(0, "a", "<", 1, "a"), Predicate(0, "b", ">", 1, "b")]
        )
        assert ThetaJoinMatrix(rel, dc, sqrt_p=4).check_full() == []


class TestRepeatedCleaning:
    def test_idempotent_full_clean(self):
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)],
            [(1, 10), (1, 20), (2, 30)],
        )
        d = Daisy(use_cost_model=False)
        d.register_table("t", rel)
        d.add_rule("t", "a -> b", name="f")
        first = d.clean_table("t")
        snapshot = [r.values for r in d.table("t").rows]
        second = d.clean_table("t")
        assert second.errors_fixed == 0
        assert [r.values for r in d.table("t").rows] == snapshot
