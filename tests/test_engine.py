"""Tests for the partitioned dataflow engine and work accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import (
    HashPartitioner,
    PartitionedDataset,
    RangePartitioner,
    WorkCounter,
)


class TestWorkCounter:
    def test_charges_accumulate(self):
        wc = WorkCounter()
        wc.charge_scan(10)
        wc.charge_comparisons(5)
        wc.charge_update(2)
        assert wc.total() == 17

    def test_snapshot_and_delta(self):
        wc = WorkCounter()
        wc.charge_scan(10)
        snap = wc.snapshot()
        wc.charge_scan(5)
        delta = wc.delta_since(snap)
        assert delta.tuples_scanned == 5

    def test_merge(self):
        a, b = WorkCounter(), WorkCounter()
        a.charge_scan(1)
        b.charge_comparisons(2)
        a.merge(b)
        assert a.total() == 3

    def test_reset(self):
        wc = WorkCounter()
        wc.charge_scan(10)
        wc.reset()
        assert wc.total() == 0

    def test_as_dict(self):
        wc = WorkCounter()
        wc.charge_partition(checked=3, pruned=2)
        d = wc.as_dict()
        assert d["partitions_checked"] == 3 and d["partitions_pruned"] == 2


class TestHashPartitioner:
    def test_split_covers_all(self):
        p = HashPartitioner(4, key=lambda x: x)
        parts = p.split(range(100))
        assert sorted(x for part in parts for x in part) == list(range(100))

    def test_same_key_same_partition(self):
        p = HashPartitioner(4, key=lambda x: x % 7)
        assert p.partition_of(7) == p.partition_of(14)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0, key=lambda x: x)


class TestRangePartitioner:
    def test_contiguous_ranges(self):
        p = RangePartitioner(4, key=float).fit(list(range(100)))
        parts = p.split(range(100))
        flat = [x for part in parts for x in part]
        assert sorted(flat) == list(range(100))
        # Each partition's max <= next partition's min.
        for i in range(len(parts) - 1):
            if parts[i] and parts[i + 1]:
                assert max(parts[i]) <= min(parts[i + 1])

    def test_handles_duplicates(self):
        p = RangePartitioner(4, key=float).fit([5.0] * 50)
        parts = p.split([5.0] * 50)
        assert sum(len(x) for x in parts) == 50

    def test_empty_fit(self):
        p = RangePartitioner(4, key=float).fit([])
        assert len(p.boundaries) == 1

    def test_max_value_not_lost(self):
        p = RangePartitioner(3, key=float).fit(list(range(10)))
        parts = p.split(range(10))
        assert 9 in [x for part in parts for x in part]


class TestPartitionedDataset:
    def test_from_items_round_robin(self):
        ds = PartitionedDataset.from_items(range(10), num_partitions=3)
        assert ds.num_partitions() == 3
        assert ds.count() == 10

    def test_map_filter(self):
        wc = WorkCounter()
        ds = PartitionedDataset.from_items(range(10), counter=wc)
        out = ds.map(lambda x: x * 2).filter(lambda x: x > 10)
        assert sorted(out.collect()) == [12, 14, 16, 18]
        assert wc.tuples_scanned == 20  # two passes of 10

    def test_flat_map(self):
        ds = PartitionedDataset.from_items([1, 2], num_partitions=1)
        assert sorted(ds.flat_map(lambda x: [x, x]).collect()) == [1, 1, 2, 2]

    def test_union(self):
        a = PartitionedDataset.from_items([1])
        b = PartitionedDataset.from_items([2])
        assert sorted(a.union(b).collect()) == [1, 2]

    def test_distinct(self):
        ds = PartitionedDataset.from_items([1, 1, 2, 2, 3])
        assert sorted(ds.distinct().collect()) == [1, 2, 3]

    def test_group_by_key_groups_whole(self):
        pairs = [(i % 3, i) for i in range(30)]
        ds = PartitionedDataset.from_items(pairs, num_partitions=4)
        grouped = dict(ds.group_by_key().collect())
        assert set(grouped) == {0, 1, 2}
        assert sorted(grouped[0]) == list(range(0, 30, 3))

    def test_reduce_by_key(self):
        pairs = [(i % 2, 1) for i in range(10)]
        ds = PartitionedDataset.from_items(pairs)
        out = dict(ds.reduce_by_key(lambda a, b: a + b).collect())
        assert out == {0: 5, 1: 5}

    def test_join(self):
        left = PartitionedDataset.from_items([(1, "a"), (2, "b")])
        right = PartitionedDataset.from_items([(1, "x"), (1, "y"), (3, "z")])
        out = sorted(left.join(right).collect())
        assert out == [(1, ("a", "x")), (1, ("a", "y"))]

    def test_cartesian_pairs_within_partitions(self):
        wc = WorkCounter()
        ds = PartitionedDataset([[1, 2, 3]], counter=wc)
        out = ds.cartesian_pairs_within_partitions(lambda a, b: a + b == 4)
        assert out.collect() == [(1, 3)]
        assert wc.comparisons == 3  # C(3,2)

    def test_repartition(self):
        ds = PartitionedDataset.from_items(range(10), num_partitions=2)
        out = ds.repartition(5)
        assert out.num_partitions() == 5
        assert sorted(out.collect()) == list(range(10))

    def test_critical_path_size(self):
        ds = PartitionedDataset([[1, 2, 3], [4]])
        assert ds.critical_path_size() == 3

    def test_empty_dataset(self):
        ds = PartitionedDataset([])
        assert ds.count() == 0
        assert ds.num_partitions() == 1


@given(st.lists(st.integers(-50, 50), max_size=60), st.integers(1, 8))
def test_partitioning_preserves_multiset(items, parts):
    ds = PartitionedDataset.from_items(items, num_partitions=parts)
    assert sorted(ds.collect()) == sorted(items)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=60), st.integers(1, 6))
def test_range_partitioner_ordering_invariant(values, parts):
    p = RangePartitioner(parts, key=float).fit(values)
    split = p.split(values)
    assert sorted(x for part in split for x in part) == sorted(values)
    for i in range(len(split) - 1):
        if split[i] and split[i + 1]:
            assert max(split[i]) <= min(split[i + 1])
