"""Integration tests: Daisy end-to-end query execution with cleaning."""

import pytest

from repro import Daisy
from repro.probabilistic import PValue
from repro.relation import ColumnType, Relation


def cities_rel():
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )


@pytest.fixture
def daisy():
    d = Daisy()
    d.register_table("cities", cities_rel())
    d.add_rule("cities", "zip -> city", name="phi")
    return d


class TestSpQueries:
    def test_rhs_filter_cleans_and_returns(self, daisy):
        result = daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        assert len(result) == 3  # rows 0, 2 + repaired row 1
        assert daisy.probabilistic_cells("cities") > 0

    def test_lhs_filter_returns_candidate_matches(self, daisy):
        result = daisy.execute("SELECT city FROM cities WHERE zip = 9001")
        # Table 3: four tuples qualify after cleaning.
        assert len(result) == 4

    def test_untouched_attrs_skip_cleaning(self):
        d = Daisy()
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, 9001, "LA"), (2, 9001, "SF")],
        )
        d.register_table("t", rel)
        d.add_rule("t", "zip -> city")
        result = d.execute("SELECT a FROM t WHERE a = 1")
        assert d.probabilistic_cells("t") == 0
        assert len(result) == 1

    def test_second_query_cheaper_than_first(self, daisy):
        daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        work_first = daisy.query_log[-1].work_units
        daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        work_second = daisy.query_log[-1].work_units
        assert work_second < work_first

    def test_range_query(self, daisy):
        result = daisy.execute("SELECT city FROM cities WHERE zip >= 9001 AND zip < 10002")
        assert len(result) == 5

    def test_or_connector(self, daisy):
        result = daisy.execute(
            "SELECT city FROM cities WHERE zip = 9001 OR zip = 10001"
        )
        assert len(result) == 5

    def test_select_star(self, daisy):
        result = daisy.execute("SELECT * FROM cities WHERE zip = 10001")
        assert result.relation.schema.names == ("zip", "city")


class TestGroupByQueries:
    def test_count_group_by(self, daisy):
        result = daisy.execute(
            "SELECT city, COUNT(*) AS n FROM cities GROUP BY city"
        )
        total = sum(row.values[1] for row in result.relation.rows)
        assert total == 5

    def test_cleaning_happens_before_aggregation(self, daisy):
        daisy.execute("SELECT city, COUNT(*) AS n FROM cities GROUP BY city")
        # Cleaning was pushed below the group-by: cells got repaired.
        assert daisy.probabilistic_cells("cities") > 0

    def test_avg(self):
        d = Daisy()
        rel = Relation.from_rows(
            [("g", ColumnType.INT), ("x", ColumnType.FLOAT)],
            [(1, 10.0), (1, 20.0), (2, 30.0)],
        )
        d.register_table("t", rel)
        result = d.execute("SELECT g, AVG(x) AS m FROM t GROUP BY g")
        by_g = {row.values[0]: row.values[1] for row in result.relation.rows}
        assert by_g == {1: 15.0, 2: 30.0}


class TestJoinQueries:
    def make_daisy(self):
        d = Daisy()
        d.register_table(
            "cities",
            Relation.from_rows(
                [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
                [(9001, "Los Angeles"), (9001, "San Francisco"), (10001, "San Francisco")],
                name="cities",
            ),
        )
        d.register_table(
            "employee",
            Relation.from_rows(
                [("zip", ColumnType.INT), ("ename", ColumnType.STRING), ("phone", ColumnType.INT)],
                [(9001, "Peter", 23456), (10001, "Mary", 12345), (10002, "Jon", 12345)],
                name="employee",
            ),
        )
        d.add_rule("cities", "zip -> city", name="phi1")
        d.add_rule("employee", "phone -> zip", name="phi2")
        return d

    def test_example6_end_to_end(self):
        d = self.make_daisy()
        result = d.execute(
            "SELECT cities.zip, employee.ename FROM cities, employee "
            "WHERE cities.zip = employee.zip AND city = 'Los Angeles'"
        )
        names = sorted(row.values[1] for row in result.relation.rows)
        assert names == ["Jon", "Mary", "Peter", "Peter"]

    def test_join_without_rules_plain(self):
        d = Daisy()
        d.register_table(
            "a", Relation.from_rows([("k", ColumnType.INT)], [(1,), (2,)], name="a")
        )
        d.register_table(
            "b", Relation.from_rows([("k", ColumnType.INT)], [(2,), (3,)], name="b")
        )
        result = d.execute("SELECT a.k FROM a, b WHERE a.k = b.k")
        assert len(result) == 1

    def test_join_with_groupby(self):
        d = self.make_daisy()
        result = d.execute(
            "SELECT employee.ename, COUNT(*) AS n FROM cities, employee "
            "WHERE cities.zip = employee.zip GROUP BY employee.ename"
        )
        assert len(result) >= 1


class TestGradualCleaning:
    def test_dataset_becomes_probabilistic_incrementally(self, daisy):
        assert daisy.probabilistic_cells("cities") == 0
        daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        first = daisy.probabilistic_cells("cities")
        assert first > 0
        daisy.execute("SELECT zip FROM cities WHERE city = 'New York'")
        assert daisy.probabilistic_cells("cities") >= first

    def test_full_coverage_workload_matches_offline(self):
        """The paper's FD correctness guarantee: after a workload covering
        the whole dataset, Daisy's violation repairs equal offline's."""
        from repro.baselines import OfflineCleaner

        d = Daisy(use_cost_model=False)
        d.register_table("cities", cities_rel())
        d.add_rule("cities", "zip -> city", name="phi")
        d.execute("SELECT city FROM cities WHERE zip >= 0 AND zip < 99999")

        cleaner = OfflineCleaner()
        offline_rel, _ = cleaner.clean(cities_rel(), d.states["cities"].rules)

        daisy_rel = d.table("cities")
        for tid in range(5):
            d_cell = daisy_rel.row_by_tid(tid).values[1]
            o_cell = offline_rel.row_by_tid(tid).values[1]
            d_vals = set(d_cell.concrete_values()) if isinstance(d_cell, PValue) else {d_cell}
            o_vals = set(o_cell.concrete_values()) if isinstance(o_cell, PValue) else {o_cell}
            assert d_vals == o_vals, f"tid {tid}: {d_vals} != {o_vals}"

    def test_clean_table_direct(self, daisy):
        report = daisy.clean_table("cities")
        assert report.errors_fixed > 0
        result = daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        # No further cleaning needed.
        assert daisy.query_log[-1].errors_fixed == 0


class TestCostModelSwitch:
    def test_switch_happens_on_dirty_heavy_workload(self):
        from repro.datasets import ssb, workloads

        inst = ssb.generate_instance(
            num_rows=600, num_orderkeys=60, num_suppkeys=15, seed=3
        )
        d = Daisy(use_cost_model=True, expected_queries=30)
        d.register_table("lineorder", inst.lineorder)
        d.add_rule("lineorder", inst.fd)
        queries = workloads.range_queries(
            "lineorder", "suppkey", 15, 30, projection="orderkey, suppkey"
        )
        report = d.execute_workload(queries)
        assert report.switch_query_index is not None
        # After the switch every rule is fully cleaned.
        state = d.states["lineorder"]
        assert all(state.is_fully_cleaned(r) for r in state.rules)

    def test_no_switch_without_cost_model(self):
        from repro.datasets import ssb, workloads

        inst = ssb.generate_instance(
            num_rows=600, num_orderkeys=60, num_suppkeys=15, seed=3
        )
        d = Daisy(use_cost_model=False)
        d.register_table("lineorder", inst.lineorder)
        d.add_rule("lineorder", inst.fd)
        queries = workloads.range_queries(
            "lineorder", "suppkey", 15, 10, projection="orderkey, suppkey"
        )
        report = d.execute_workload(queries)
        assert report.switch_query_index is None


class TestExplain:
    def test_explain_shows_cleaning(self, daisy):
        text = daisy.explain("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        assert "CleanSigma" in text
