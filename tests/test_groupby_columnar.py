"""Parity tests: columnar GROUP BY (ColumnView group index) vs the rowstore
row-walking path, at the Relation level and end-to-end through Daisy."""

import pytest

from repro import Daisy, DaisyConfig
from repro.probabilistic import PValue
from repro.probabilistic.value import Candidate
from repro.relation import BACKENDS, ColumnType, Relation


def sample_rel():
    return Relation.from_rows(
        [
            ("g", ColumnType.INT),
            ("h", ColumnType.STRING),
            ("x", ColumnType.FLOAT),
        ],
        [
            (1, "a", 10.0),
            (2, "b", 20.0),
            (1, "a", 30.0),
            (3, "b", None),
            (2, "a", 5.0),
            (1, "b", 2.5),
        ],
        name="t",
        validate=False,
    )


def rel_with_nulls_and_pvalues():
    rel = sample_rel()
    rows = rel.rows
    # A probabilistic grouping key (collapses to most-probable = 2) and a
    # probabilistic aggregate input (most-probable = 8.0), plus a None key.
    pv_key = PValue([Candidate(2, 0.7, 0), Candidate(9, 0.3, 0)])
    pv_x = PValue([Candidate(8.0, 0.6, 0), Candidate(1.0, 0.4, 0)])
    rows[1] = type(rows[1])(rows[1].tid, (pv_key, "b", 20.0))
    rows[4] = type(rows[4])(rows[4].tid, (2, "a", pv_x))
    rows[3] = type(rows[3])(rows[3].tid, (None, "b", None))
    return rel


AGGS = [
    ("count", "*", "n"),
    ("sum", "x", "sx"),
    ("avg", "x", "ax"),
    ("min", "x", "mn"),
    ("max", "x", "mx"),
]


def assert_same_relation(a: Relation, b: Relation):
    assert a.schema.names == b.schema.names
    assert [c.ctype for c in a.schema] == [c.ctype for c in b.schema]
    assert len(a) == len(b)
    for ra, rb in zip(a.rows, b.rows):
        assert ra == rb


class TestRelationLevelParity:
    @pytest.mark.parametrize("make_rel", [sample_rel, rel_with_nulls_and_pvalues])
    @pytest.mark.parametrize("keys", [["g"], ["h"], ["g", "h"]])
    def test_full_table(self, make_rel, keys):
        rowstore = make_rel().group_by(keys, AGGS)
        rel = make_rel()
        columnar = rel.group_by(keys, AGGS, view=rel.column_view())
        assert_same_relation(columnar, rowstore)

    @pytest.mark.parametrize("make_rel", [sample_rel, rel_with_nulls_and_pvalues])
    @pytest.mark.parametrize("tids", [{0, 2, 4}, {1, 3, 5}, {5}, set()])
    def test_tid_restriction(self, make_rel, tids):
        rowstore = make_rel().restrict_tids(tids).group_by(["g"], AGGS)
        rel = make_rel()
        columnar = rel.group_by(["g"], AGGS, view=rel.column_view(), tids=tids)
        assert_same_relation(columnar, rowstore)

    def test_group_order_is_first_occurrence_of_restriction(self):
        rel = sample_rel()
        # Restricted to rows where group 2 appears before group 1.
        out = rel.group_by(
            ["g"], [("count", "*", "n")], view=rel.column_view(), tids={1, 2, 5}
        )
        assert [row.values[0] for row in out.rows] == [2, 1]

    def test_hash_seeded_single_key_path(self):
        rel = sample_rel()
        view = rel.column_view()
        view.hash_column("g")  # pre-build so group_index can seed from it
        order, groups = view.group_index(("g",))
        assert order == [(1,), (2,), (3,)]
        assert groups[(1,)] == [0, 2, 5]
        out = rel.group_by(["g"], AGGS, view=view)
        assert_same_relation(out, sample_rel().group_by(["g"], AGGS))

    def test_group_index_cached_and_evicted_on_key_patch(self):
        rel = sample_rel()
        view = rel.column_view()
        first = view.group_index(("g",))
        assert view.group_index(("g",)) is first  # cached
        patched_other = rel.update_cells({(0, "x"): 99.0}).column_view()
        assert patched_other.group_index(("g",)) is first  # untouched attr
        patched_key = rel.update_cells({(0, "g"): 7}).column_view()
        rebuilt = patched_key.group_index(("g",))
        assert rebuilt is not first
        assert (7,) in rebuilt[1]


class TestEndToEndBackendParity:
    def make_engine(self, backend):
        d = Daisy(config=DaisyConfig(use_cost_model=False, backend=backend))
        d.register_table(
            "cities",
            Relation.from_rows(
                [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
                [
                    (9001, "Los Angeles"),
                    (9001, "San Francisco"),
                    (9001, "Los Angeles"),
                    (10001, "San Francisco"),
                    (10001, "New York"),
                ],
                name="cities",
            ),
        )
        d.add_rule("cities", "zip -> city", name="phi")
        return d

    def test_group_by_after_cleaning_matches_rowstore(self):
        results = {}
        for backend in BACKENDS:
            d = self.make_engine(backend)
            session = d.connect()
            # First query repairs cells (keys become probabilistic), the
            # grouped query then exercises the PValue-collapsing path.
            session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
            result = session.execute(
                "SELECT city, COUNT(*) AS n, MIN(zip) AS mz "
                "FROM cities GROUP BY city"
            )
            results[backend] = result.relation
        rowstore = results["rowstore"]
        columnar = results["columnar"]
        assert rowstore.schema.names == columnar.schema.names
        assert rowstore.to_plain_rows() == columnar.to_plain_rows()
