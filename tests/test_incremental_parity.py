"""Incremental-vs-cold-rebuild parity after chains of external updates.

The contract under test (the PR's acceptance bar): after a chain of
``update_cells`` batches, **every incrementally patched structure** —
ColumnView columns, sorted/hash indexes, the PValue-bounds sidecar, the
group index, and the theta-join detection matrices — equals its
cold-rebuilt twin on the hospital and air-quality fixtures; and the
patched matrices return byte-identical violations and work units to the
cold rebuild under serial, thread, and process pools.

Engine-level: a session running with ``matrix_maintenance="patch"`` and
one running with ``"rebuild"`` (the pre-maintenance oracle: full rebuild
per sync) produce identical query results and final relations — the two
modes may differ in how much checked-cell bookkeeping survives (that is
the perf win), never in answers.
"""

from __future__ import annotations

import pytest

from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.datasets import airquality, hospital
from repro.detection.maintenance import matrix_fingerprint, sync_matrix
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.parallel import fork_available, make_pool
from repro.probabilistic.value import Candidate, PValue
from repro.relation import ColumnView, Relation

POOLS = ["serial", "thread", "process"]


def _pool_or_skip(kind: str, workers: int = 3):
    if kind == "process" and not fork_available():
        pytest.skip("no fork on this platform")
    return make_pool(kind, workers)


def hospital_dc() -> DenialConstraint:
    # provider_id and phone are assigned monotonically together, so the DC
    # holds on clean data and violations come only from updates.
    return DenialConstraint(
        [
            Predicate(0, "provider_id", "<", 1, "provider_id"),
            Predicate(0, "phone", ">", 1, "phone"),
        ],
        name="dc_provider_phone",
    )


def airquality_dc() -> DenialConstraint:
    return DenialConstraint(
        [
            Predicate(0, "co_mean", ">", 1, "co_mean"),
            Predicate(0, "co_max", "<", 1, "co_max"),
        ],
        name="dc_co",
    )


def hospital_relation(n: int = 400) -> Relation:
    return hospital.generate_instance(num_rows=n, seed=11).dirty


def airquality_relation(n: int = 220) -> Relation:
    return airquality.generate_instance(
        num_rows=n, num_states=8, violation_level="low", seed=17
    ).dirty


def hospital_updates() -> list[dict]:
    """Three batches touching ~1% of cells: reroutes, content, a PValue."""
    return [
        {(3, "phone"): 5559999, (41, "provider_id"): 10901},
        {(120, "phone"): 5550001, (120, "provider_id"): 10903,
         (7, "city"): "Elsewhere"},
        {(55, "phone"): PValue([Candidate(5550300, 0.6), Candidate(5550400, 0.4)]),
         (200, "provider_id"): 9999},
    ]


def airquality_updates() -> list[dict]:
    return [
        {(5, "co_mean"): 9.5, (30, "co_max"): 0.01},
        {(5, "co_mean"): 0.2, (77, "co_mean"): 4.4, (12, "county_name"): "Nowhere"},
        {(150, "co_max"): 12.0},
    ]


FIXTURES = {
    "hospital": (hospital_relation, hospital_dc, hospital_updates),
    "airquality": (airquality_relation, airquality_dc, airquality_updates),
}


# ---------------------------------------------------------------------------
# ColumnView structures
# ---------------------------------------------------------------------------


def view_fingerprint(view: ColumnView, attrs) -> dict:
    out: dict = {"tids": list(view.tids)}
    for attr in attrs:
        out[f"col:{attr}"] = [repr(c) for c in view.columns[attr]]
        out[f"pv:{attr}"] = set(view.pvalue_positions(attr))
        sc = view.sorted_column(attr)
        out[f"sorted:{attr}"] = (
            None if sc is None else ([repr(v) for v in sc.values], list(sc.positions))
        )
        hc = view.hash_column(attr)
        out[f"hash:{attr}"] = (
            None if hc is None
            else sorted((repr(k), tuple(v)) for k, v in hc.items())
        )
    return out


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_columnview_structures_match_cold_rebuild(fixture):
    make_rel, _make_dc, make_updates = FIXTURES[fixture]
    rel = make_rel()
    rel.column_view()  # force the view so updates patch it incrementally
    for batch in make_updates():
        rel = rel.update_cells(batch)
    patched = rel.column_view()
    cold = ColumnView.from_relation(rel)
    attrs = rel.schema.names
    assert view_fingerprint(patched, attrs) == view_fingerprint(cold, attrs)

    # The PValue-bounds sidecar (exercised through range filters) and the
    # group index answer like the cold view.
    numeric_attr = "phone" if fixture == "hospital" else "co_mean"
    key_attr = "city" if fixture == "hospital" else "county_name"
    pivot = 5550300 if fixture == "hospital" else 1.0
    assert patched.filter_positions(numeric_attr, ">", pivot) == cold.filter_positions(
        numeric_attr, ">", pivot
    )
    assert patched.group_index((key_attr,)) == cold.group_index((key_attr,))


# ---------------------------------------------------------------------------
# Theta-join matrices
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("pool_kind", POOLS)
def test_patched_matrix_byte_identical_to_cold_rebuild(fixture, pool_kind):
    """Structure, violations, and work units match a cold rebuild, with the
    check fanned out over every pool kind."""
    make_rel, make_dc, make_updates = FIXTURES[fixture]
    rel = make_rel()
    matrix = ThetaJoinMatrix(rel, make_dc(), sqrt_p=6, counter=WorkCounter())
    matrix.check_full()

    current = rel
    for batch in make_updates():
        current = current.update_cells(batch)
        sync_matrix(matrix, batch)

    cold = ThetaJoinMatrix(current, make_dc(), sqrt_p=6, counter=WorkCounter())
    assert matrix_fingerprint(matrix, include_sorted=True) == matrix_fingerprint(
        cold, include_sorted=True
    )

    # Same bookkeeping -> byte-identical checks (violations AND work).
    cold.checked_cells = set(matrix.checked_cells)
    matrix.counter, cold.counter = WorkCounter(), WorkCounter()
    with _pool_or_skip(pool_kind) as pool:
        got = matrix.check_full(pool=pool)
    expected = cold.check_full()
    assert got == expected
    assert matrix.counter.as_dict() == cold.counter.as_dict()
    assert matrix.checked_cells == cold.checked_cells


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_partial_checks_after_patch_match_cold_rebuild(fixture):
    make_rel, make_dc, make_updates = FIXTURES[fixture]
    rel = make_rel()
    matrix = ThetaJoinMatrix(rel, make_dc(), sqrt_p=6, counter=WorkCounter())
    matrix.check_partial(range(0, 40))

    current = rel
    for batch in make_updates():
        current = current.update_cells(batch)
        sync_matrix(matrix, batch)

    cold = ThetaJoinMatrix(current, make_dc(), sqrt_p=6, counter=WorkCounter())
    cold.checked_cells = set(matrix.checked_cells)
    matrix.counter, cold.counter = WorkCounter(), WorkCounter()
    tids = set(range(20, 90))
    assert matrix.check_partial(tids) == cold.check_partial(tids)
    assert matrix.counter.as_dict() == cold.counter.as_dict()
    assert matrix.support() == cold.support()


# ---------------------------------------------------------------------------
# Engine-level: patch mode vs rebuild oracle
# ---------------------------------------------------------------------------


def _relation_fingerprint(rel: Relation) -> list[tuple]:
    return [(row.tid, tuple(repr(c) for c in row.values)) for row in rel.rows]


def _run_update_workload(fixture: str, mode: str, **config_kwargs) -> dict:
    make_rel, make_dc, make_updates = FIXTURES[fixture]
    daisy = Daisy(
        config=DaisyConfig(
            use_cost_model=False, matrix_maintenance=mode, **config_kwargs
        )
    )
    table = fixture
    daisy.register_table(table, make_rel())
    if fixture == "hospital":
        for fd in hospital.hospital_rules():
            daisy.add_rule(table, fd)
        queries = [
            "SELECT provider_id, phone FROM hospital WHERE provider_id < 10050",
            "SELECT provider_id, phone FROM hospital WHERE phone > 5550100",
            "SELECT city, zip FROM hospital WHERE zip >= 10000",
        ]
    else:
        daisy.add_rule(table, airquality.airquality_fd())
        queries = [
            "SELECT state_code, co_mean FROM airquality WHERE co_mean > 2.0",
            "SELECT county_name, co_max FROM airquality WHERE co_max < 1.0",
            "SELECT state_code, co_mean FROM airquality WHERE co_mean < 5.0",
        ]
    daisy.add_rule(table, make_dc())

    rows = []
    with daisy.connect() as session:
        rows.append(session.execute(queries[0]).relation.to_plain_rows())
        for batch, query in zip(make_updates(), queries):
            session.update_table(table, batch)
            rows.append(session.execute(query).relation.to_plain_rows())
        log = [
            (e.errors_fixed, e.extra_tuples, e.result_size)
            for e in session.query_log
        ]
    return {
        "rows": rows,
        "log": log,
        "relation": _relation_fingerprint(daisy.table(table)),
        "pcells": daisy.probabilistic_cells(table),
        "actions": [
            m.action for m in daisy.states[table].maintenance_log
        ],
    }


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_engine_patch_mode_matches_rebuild_oracle(fixture):
    patched = _run_update_workload(fixture, "patch")
    rebuilt = _run_update_workload(fixture, "rebuild")
    assert "patch" in patched["actions"]
    assert set(rebuilt["actions"]) == {"rebuild"}
    assert patched["rows"] == rebuilt["rows"]
    assert patched["log"] == rebuilt["log"]
    assert patched["relation"] == rebuilt["relation"]
    assert patched["pcells"] == rebuilt["pcells"]


@pytest.mark.parametrize("pool_kind", ["thread", "process"])
def test_engine_update_workload_parallel_matches_serial(pool_kind):
    """The update workload stays byte-identical when cells fan out over a
    pool — violations, repairs, relations, and work units."""
    if pool_kind == "process" and not fork_available():
        pytest.skip("no fork on this platform")
    serial = _run_update_workload("hospital", "patch")
    parallel = _run_update_workload(
        "hospital", "patch", parallelism=2, pool=pool_kind
    )
    assert parallel["rows"] == serial["rows"]
    assert parallel["log"] == serial["log"]
    assert parallel["relation"] == serial["relation"]
    assert parallel["actions"] == serial["actions"]
