"""Cross-module integration tests: persistence, possible-worlds consistency,
DC end-to-end, multi-table sessions."""


from hypothesis import given, settings, strategies as st

from repro import Daisy
from repro.constraints import DenialConstraint, Predicate
from repro.probabilistic import PValue
from repro.probabilistic.worlds import tuple_appears_in_some_world
from repro.relation import ColumnType, Relation, from_csv_string, to_csv_string


class TestPersistenceRoundtrip:
    """A gradually-cleaned (probabilistic) dataset survives CSV persistence."""

    def make_cleaned(self):
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(9001, "LA"), (9001, "SF"), (10001, "NY"), (10001, "SF")],
            name="cities",
        )
        d = Daisy(use_cost_model=False)
        d.register_table("cities", rel)
        d.add_rule("cities", "zip -> city", name="phi")
        d.clean_table("cities")
        return d.table("cities")

    def test_roundtrip_preserves_candidates(self):
        cleaned = self.make_cleaned()
        reloaded = from_csv_string(to_csv_string(cleaned), name="cities")
        assert reloaded.probabilistic_cell_count() == cleaned.probabilistic_cell_count()
        for a, b in zip(cleaned.rows, reloaded.rows):
            for ca, cb in zip(a.values, b.values):
                if isinstance(ca, PValue):
                    assert isinstance(cb, PValue)
                    assert set(ca.concrete_values()) == set(cb.concrete_values())

    def test_reloaded_relation_queryable(self):
        cleaned = self.make_cleaned()
        reloaded = from_csv_string(to_csv_string(cleaned), name="cities")
        d = Daisy()
        d.register_table("cities", reloaded)
        result = d.execute("SELECT zip FROM cities WHERE city = 'LA'")
        # Possible-worlds filter sees candidate LAs of repaired rows.
        assert len(result) >= 1


class TestPossibleWorldsConsistency:
    """The executor's filter semantics agree with world enumeration."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=2,
            max_size=6,
        ),
        st.integers(0, 3),
    )
    def test_filter_matches_world_enumeration(self, rows, probe):
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], rows, name="t"
        )
        d = Daisy(use_cost_model=False)
        d.register_table("t", rel)
        d.add_rule("t", "a -> b", name="f")
        d.clean_table("t")
        cleaned = d.table("t")

        result = cleaned.where("b", "=", probe)
        result_tids = {r.tid for r in result}
        for row in cleaned.rows:
            expected = tuple_appears_in_some_world(cleaned, "b", "=", probe, row.tid)
            assert (row.tid in result_tids) == expected


class TestDcEndToEnd:
    def test_daisy_with_inequality_dc(self):
        dc = DenialConstraint(
            [
                Predicate(0, "price", "<", 1, "price"),
                Predicate(0, "discount", ">", 1, "discount"),
            ],
            name="dc",
        )
        rel = Relation.from_rows(
            [("k", ColumnType.INT), ("price", ColumnType.FLOAT),
             ("discount", ColumnType.FLOAT)],
            [(0, 100.0, 0.01), (1, 200.0, 0.30), (2, 300.0, 0.03),
             (3, 400.0, 0.04)],
            name="orders",
        )
        d = Daisy(use_cost_model=False, dc_error_threshold=0.95)
        d.register_table("orders", rel)
        d.add_rule("orders", dc)
        result = d.execute("SELECT k FROM orders WHERE price >= 100 AND price <= 400")
        # (1, 0.30) conflicts with tuples 2 and 3: it got range candidates.
        assert d.probabilistic_cells("orders") > 0
        assert len(result) == 4

    def test_dc_rule_via_text(self):
        rel = Relation.from_rows(
            [("salary", ColumnType.FLOAT), ("tax", ColumnType.FLOAT)],
            [(1000.0, 0.1), (3000.0, 0.2), (2000.0, 0.3)],
            name="emp",
        )
        d = Daisy(use_cost_model=False, dc_error_threshold=0.99)
        d.register_table("emp", rel)
        rules = d.add_rule(
            "emp", "forall t1,t2: not(t1.salary < t2.salary & t1.tax > t2.tax)",
            name="dc",
        )
        assert len(rules) == 1
        d.execute("SELECT salary, tax FROM emp WHERE salary > 0")
        assert d.probabilistic_cells("emp") > 0


class TestMultiTableSession:
    def test_independent_tables_do_not_interfere(self):
        d = Daisy(use_cost_model=False)
        a = Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)],
            [(1, "x"), (1, "y")], name="a",
        )
        b = Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)],
            [(2, "p"), (2, "p")], name="b",
        )
        d.register_table("a", a)
        d.register_table("b", b)
        d.add_rule("a", "k -> v", name="fa")
        d.add_rule("b", "k -> v", name="fb")
        d.execute("SELECT v FROM a WHERE k = 1")
        assert d.probabilistic_cells("a") > 0
        assert d.probabilistic_cells("b") == 0

    def test_query_log_accumulates(self):
        d = Daisy()
        d.register_table(
            "t", Relation.from_rows([("x", ColumnType.INT)], [(1,)], name="t")
        )
        d.execute("SELECT x FROM t")
        d.execute("SELECT x FROM t WHERE x = 1")
        assert len(d.query_log) == 2
        assert d.query_log[0].result_size == 1


class TestMixedRuleKinds:
    def test_fd_and_dc_on_same_table(self):
        rel = Relation.from_rows(
            [("g", ColumnType.INT), ("v", ColumnType.INT),
             ("price", ColumnType.FLOAT), ("discount", ColumnType.FLOAT)],
            [(1, 10, 100.0, 0.01), (1, 20, 200.0, 0.30), (2, 30, 300.0, 0.03)],
            name="t",
        )
        d = Daisy(use_cost_model=False, dc_error_threshold=0.95)
        d.register_table("t", rel)
        d.add_rule("t", "g -> v", name="fd")
        d.add_rule(
            "t", "not(t1.price < t2.price & t1.discount > t2.discount)",
            name="dc",
        )
        d.execute("SELECT g, v, price, discount FROM t WHERE price > 0")
        # Both rule kinds fired: v (FD) and price/discount (DC) cells fixed.
        rel_after = d.table("t")
        fd_fixed = isinstance(rel_after.row_by_tid(0).values[1], PValue)
        dc_fixed = any(
            isinstance(rel_after.row_by_tid(t).values[i], PValue)
            for t in (1, 2)
            for i in (2, 3)
        )
        assert fd_fixed and dc_fixed
