"""Tests for CSV round-tripping and the secondary indexes."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.probabilistic import Candidate, PValue, ValueRange
from repro.relation import (
    ColumnType,
    GroupIndex,
    HashIndex,
    Relation,
    from_csv_string,
    to_csv_string,
)


@pytest.fixture
def rel():
    return Relation.from_rows(
        [("k", ColumnType.INT), ("v", ColumnType.STRING), ("x", ColumnType.FLOAT)],
        [(1, "a", 1.5), (2, "b", 2.5), (2, "a", None)],
        name="t",
    )


class TestCsvRoundTrip:
    def test_plain_roundtrip(self, rel):
        back = from_csv_string(to_csv_string(rel))
        assert back.schema == rel.schema
        assert [r.values for r in back] == [r.values for r in rel]

    def test_none_roundtrip(self, rel):
        back = from_csv_string(to_csv_string(rel))
        assert back.rows[2].values[2] is None

    def test_probabilistic_roundtrip(self, rel):
        pv = PValue([Candidate("a", 0.75), Candidate("b", 0.25)])
        rel2 = rel.update_cells({(0, "v"): pv})
        back = from_csv_string(to_csv_string(rel2))
        cell = back.rows[0].values[1]
        assert isinstance(cell, PValue)
        assert cell == pv

    def test_range_candidate_roundtrip(self, rel):
        pv = PValue([
            Candidate(ValueRange(low=10.0, high=20.0, low_open=False), 0.5),
            Candidate(5.0, 0.5),
        ])
        rel2 = rel.update_cells({(1, "x"): pv})
        back = from_csv_string(to_csv_string(rel2))
        cell = back.rows[1].values[2]
        assert isinstance(cell, PValue)
        ranges = [c.value for c in cell.candidates if c.is_range()]
        assert ranges and ranges[0].low == 10.0 and not ranges[0].low_open

    def test_worlds_preserved(self, rel):
        pv = PValue([Candidate("a", 0.5, world=1), Candidate("b", 0.5, world=2)])
        back = from_csv_string(to_csv_string(rel.update_cells({(0, "v"): pv})))
        assert back.rows[0].values[1].worlds() == (1, 2)

    def test_empty_csv_rejected(self):
        with pytest.raises(SchemaError):
            from_csv_string("")

    def test_bad_header_rejected(self):
        with pytest.raises(SchemaError):
            from_csv_string("name_without_type\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            from_csv_string("a:blob\n")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            from_csv_string("a:int,b:int\n1\n")


class TestHashIndex:
    def test_lookup(self, rel):
        idx = HashIndex(rel, "k")
        assert idx.lookup(2) == {1, 2}
        assert idx.lookup(99) == set()

    def test_lookup_many(self, rel):
        idx = HashIndex(rel, "k")
        assert idx.lookup_many([1, 2]) == {0, 1, 2}

    def test_probabilistic_cells_indexed_per_candidate(self, rel):
        pv = PValue([Candidate(7, 0.5), Candidate(8, 0.5)])
        idx = HashIndex(rel.update_cells({(0, "k"): pv}), "k")
        assert idx.lookup(7) == {0}
        assert idx.lookup(8) == {0}

    def test_contains_and_len(self, rel):
        idx = HashIndex(rel, "v")
        assert "a" in idx
        assert len(idx) == 2


class TestGroupIndex:
    def test_groups(self, rel):
        gi = GroupIndex(rel, ["k"])
        assert gi.group_sizes() == {(1,): 1, (2,): 2}

    def test_composite_key(self, rel):
        gi = GroupIndex(rel, ["k", "v"])
        assert len(gi) == 3

    def test_probabilistic_key_most_probable(self, rel):
        pv = PValue([Candidate(2, 0.9), Candidate(1, 0.1)])
        gi = GroupIndex(rel.update_cells({(0, "k"): pv}), ["k"])
        assert gi.group_sizes() == {(2,): 3}


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.text(min_size=0, max_size=5).filter(
            lambda s: "\x01" not in s)),
        min_size=0,
        max_size=20,
    )
)
def test_csv_roundtrip_property(rows):
    rel = Relation.from_rows(
        [("k", ColumnType.INT), ("v", ColumnType.STRING)], rows, validate=False
    )
    back = from_csv_string(to_csv_string(rel))
    assert [r.values for r in back] == [r.values for r in rel]
