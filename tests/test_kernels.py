"""NumPy kernel backend: unit parity, knob plumbing, and planner pricing.

Every kernel in :mod:`repro.relation.kernels` must be *byte-identical* to
the pure-Python oracle it replaces — same values, same object types, same
orderings, same work-unit charges — or must decline (return ``None``) so
the caller stays on the oracle.  The tests here pin both halves of that
contract: the exactness gates (dtype inference, 2^53 bounds, NaN and bool
rejection) and the parity of the vectorized results, plus the data-scoped
``column_backend`` knob (config validation, session rejection, planner
pricing, TableState pinning) and a seeded end-to-end forced-backend run.

Kernel-level tests skip cleanly when NumPy is absent (the no-numpy CI job
runs this module too and must stay green on the fallback assertions).
"""

from __future__ import annotations

import math

import pytest

from repro import Daisy
from repro.api.config import DaisyConfig
from repro.constraints import FunctionalDependency
from repro.core.costmodel import (
    DECISION_COLUMN_BACKEND,
    PASS_KERNEL,
    AdaptivePlanner,
)
from repro.core.state import TableState
from repro.datasets import ssb, workloads
from repro.detection import matrix_fingerprint
from repro.detection.fd_detector import detect_fd_violations
from repro.engine.stats import WorkCounter
from repro.probabilistic.value import cell_compare
from repro.relation import ColumnType, Relation
from repro.relation import kernels
from repro.relation.columnview import ColumnView
from repro.relation.kernels import (
    AUTO_MIN_ROWS,
    COLUMN_AUTO,
    COLUMN_NUMPY,
    COLUMN_PYTHON,
    HAVE_NUMPY,
    build_typed_column,
    resolve_column_backend,
    validate_column_backend,
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")

OPS = ("=", "!=", "<", "<=", ">", ">=")


def oracle_sorted_pairs(column, invalid=()):
    invalid = set(invalid)
    pairs = sorted(
        (v, pos)
        for pos, v in enumerate(column)
        if v is not None and pos not in invalid
    )
    return [v for v, _ in pairs], [p for _, p in pairs]


def oracle_hash_groups(column, invalid=()):
    invalid = set(invalid)
    table = {}
    for pos, v in enumerate(column):
        if v is None or pos in invalid:
            continue
        table.setdefault(v, []).append(pos)
    return table


def oracle_filter(column, op, value, invalid=()):
    invalid = set(invalid)
    return [
        pos
        for pos, cell in enumerate(column)
        if pos not in invalid and cell_compare(cell, op, value)
    ]


# -- knob validation and resolution --------------------------------------------------


class TestBackendKnob:
    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="column_backend"):
            validate_column_backend("pandas")

    def test_config_validates(self):
        with pytest.raises(ValueError, match="column_backend"):
            DaisyConfig(column_backend="vector")
        assert DaisyConfig().column_backend == COLUMN_AUTO
        assert DaisyConfig(column_backend="python").column_backend == COLUMN_PYTHON

    def test_resolve_auto_threshold(self):
        assert resolve_column_backend(COLUMN_PYTHON, 10**6) == COLUMN_PYTHON
        if HAVE_NUMPY:
            assert resolve_column_backend(COLUMN_AUTO, AUTO_MIN_ROWS) == COLUMN_NUMPY
            assert (
                resolve_column_backend(COLUMN_AUTO, AUTO_MIN_ROWS - 1)
                == COLUMN_PYTHON
            )
            assert resolve_column_backend(COLUMN_NUMPY, 1) == COLUMN_NUMPY

    def test_resolve_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        assert resolve_column_backend(COLUMN_NUMPY, 10**6) == COLUMN_PYTHON
        assert resolve_column_backend(COLUMN_AUTO, 10**6) == COLUMN_PYTHON

    def test_session_with_other_column_backend_rejected(self):
        daisy = Daisy(config=DaisyConfig(column_backend=COLUMN_PYTHON))
        with pytest.raises(ValueError, match="column_backend"):
            daisy.connect(daisy.config.replace(column_backend=COLUMN_AUTO))
        with daisy.connect(daisy.config.replace(expected_queries=9)):
            pass  # same column_backend: fine

    def test_tablestate_pins_only_auto(self):
        rel = Relation.from_rows(
            [("k", ColumnType.INT)], [(i,) for i in range(5)], name="t"
        )
        state = TableState(relation=rel, column_backend=COLUMN_AUTO)
        state.pin_column_backend(COLUMN_PYTHON)
        assert state.column_backend == COLUMN_PYTHON
        state.pin_column_backend(COLUMN_NUMPY)  # no-op: already concrete
        assert state.column_backend == COLUMN_PYTHON
        assert state.resolved_column_backend() == COLUMN_PYTHON

    def test_view_is_stamped(self):
        rel = Relation.from_rows(
            [("k", ColumnType.INT)],
            [(i,) for i in range(AUTO_MIN_ROWS)],
            name="t",
        )
        state = TableState(relation=rel, column_backend=COLUMN_AUTO)
        view = state.column_view()
        expected = COLUMN_NUMPY if HAVE_NUMPY else COLUMN_PYTHON
        assert view.column_backend == expected


class TestPlannerPricing:
    def _planner(self):
        return AdaptivePlanner(max_workers=4)

    def test_small_table_stays_python(self):
        planner = self._planner()
        decision = planner.choose_column_backend("t", 8)
        assert decision.kind == DECISION_COLUMN_BACKEND
        assert decision.pass_kind == PASS_KERNEL
        assert decision.choice == COLUMN_PYTHON

    @needs_numpy
    def test_large_table_goes_numpy(self):
        planner = self._planner()
        decision = planner.choose_column_backend("t", 100_000)
        assert decision.choice == COLUMN_NUMPY

    @needs_numpy
    def test_uncalibrated_tipping_point_matches_static_threshold(self):
        planner = self._planner()
        below = planner.choose_column_backend("t", AUTO_MIN_ROWS - 8)
        at = planner.choose_column_backend("t", AUTO_MIN_ROWS)
        assert below.choice == COLUMN_PYTHON
        assert at.choice == COLUMN_NUMPY

    def test_without_numpy_always_python(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        planner = self._planner()
        assert planner.choose_column_backend("t", 10**6).choice == COLUMN_PYTHON

    @needs_numpy
    def test_session_pins_auto_tables(self):
        rel = Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.INT)],
            [(i % 7, i % 3) for i in range(200)],
            name="t",
        )
        daisy = Daisy()
        state = daisy.register_table("t", rel)
        assert state.column_backend == COLUMN_AUTO
        with daisy.connect():
            pass
        assert state.column_backend == COLUMN_NUMPY


# -- dtype inference gates ------------------------------------------------------------


@needs_numpy
class TestTypedColumnInference:
    def test_int_column(self):
        t = build_typed_column([3, 1, 2])
        assert t is not None and t.kind == kernels.KIND_INT and t.all_valid

    def test_nulls_and_invalid_positions_masked(self):
        t = build_typed_column([3, None, 2, 9], invalid_positions={3})
        assert t is not None
        assert t.valid.tolist() == [True, False, True, False]
        assert t.n_valid == 2 and not t.all_valid

    def test_bool_columns(self):
        # All-bool columns never vectorize; bools mixed into concrete
        # numeric columns ride the fast path (True == 1 compares the same
        # in both domains and keys are fetched from the raw column), but
        # the null-masked slow path stays conservative and declines them.
        assert build_typed_column([True, False]) is None
        assert build_typed_column([1, True, None]) is None
        mixed = build_typed_column([1, True, 2])
        assert mixed is not None and mixed.kind == kernels.KIND_INT

    def test_bool_mix_parity(self):
        column = [2, True, 1, False, 0, True, 2]
        typed = build_typed_column(column)
        values, positions, _exact = kernels.sorted_pairs(typed, column)
        o_values, o_positions = oracle_sorted_pairs(column)
        assert positions == o_positions and repr(values) == repr(o_values)
        got = kernels.hash_groups(typed, column)
        want = oracle_hash_groups(column)
        assert got == want and repr(list(got)) == repr(list(want))
        for op in OPS:
            assert kernels.mask_filter_positions(typed, op, 1) == oracle_filter(
                column, op, 1
            )

    def test_mixed_int_float_requires_exactness(self):
        assert build_typed_column([1, 2.5]) is not None
        assert build_typed_column([2**53 + 1, 2.5]) is None
        assert build_typed_column([1, float("nan")]) is None

    def test_int64_overflow_rejected(self):
        assert build_typed_column([2**63, 1]) is None
        assert build_typed_column([2**62, 1]) is not None

    def test_str_column_and_mixes(self):
        assert build_typed_column(["b", "a"]) is not None
        assert build_typed_column(["b", 1]) is None

    def test_other_types_rejected(self):
        assert build_typed_column([(1, 2), (3, 4)]) is None
        assert build_typed_column([None, None]) is None


# -- kernel vs oracle unit parity ----------------------------------------------------


@needs_numpy
class TestKernelParity:
    COLUMNS = [
        [5, 1, 5, 3, 1, 5, None, 2, 5, 1],
        [1.5, -2.0, 1.5, None, 0.0, 3.25, 1.5],
        [2, 1.5, 2, None, -7, 0.5, 2, 2**40],
        ["b", "a", "b", None, "", "ab", "b"],
        [0, -(2**62), 2**62, 0, None, 17],
    ]

    @pytest.mark.parametrize("column", COLUMNS)
    def test_sorted_pairs(self, column):
        typed = build_typed_column(column)
        values, positions, exact = kernels.sorted_pairs(typed, column)
        o_values, o_positions = oracle_sorted_pairs(column)
        assert positions == o_positions
        assert values == o_values
        assert [type(v) for v in values] == [type(v) for v in o_values]
        # numeric sorted indexes carry their exact ndarray; strings don't
        if typed.kind == kernels.KIND_STR:
            assert exact is None
        else:
            assert exact.tolist() == [float(v) for v in values] or (
                exact.tolist() == values
            )

    @pytest.mark.parametrize("column", COLUMNS)
    def test_hash_groups(self, column):
        typed = build_typed_column(column)
        got = kernels.hash_groups(typed, column)
        want = oracle_hash_groups(column)
        assert got == want
        assert list(got) == list(want)  # first-occurrence insertion order
        assert [type(k) for k in got] == [type(k) for k in want]

    @pytest.mark.parametrize("column", COLUMNS)
    def test_mask_filter(self, column):
        typed = build_typed_column(column)
        probes = [v for v in column if v is not None][:3] + [99, "zz", None]
        for op in OPS:
            for value in probes:
                got = kernels.mask_filter_positions(typed, op, value)
                if got is None:  # declined: incompatible probe type
                    assert type(value) is not type(
                        next(v for v in column if v is not None)
                    ) or value != value
                    continue
                assert got == oracle_filter(column, op, value)

    def test_mask_filter_none_matches_nothing(self):
        typed = build_typed_column([1, 2, 3])
        for op in OPS:
            assert kernels.mask_filter_positions(typed, op, None) == []

    def test_argsort_positions(self):
        cells = [5, 1.5, 5, 0, -3]
        positions = [0, 2, 5, 7, 9]
        got, exact = kernels.argsort_positions(cells, positions)
        want = [p for _, p in sorted(zip(cells, positions))]
        assert got == want
        assert exact.tolist() == sorted(cells)  # rides along for search_cuts
        assert kernels.argsort_positions(["a", "b"], [0, 1]) is None
        assert kernels.argsort_positions([1, float("nan")], [0, 1]) is None
        empty, empty_exact = kernels.argsort_positions([], [])
        assert empty == [] and empty_exact.size == 0

    def test_grouped_positions_matches_scan(self):
        col_a = [1, 2, 1, 2, 1, 3]
        col_b = [9, 9, 9, 8, 9, 9]
        order = {}
        for pos, key in enumerate(zip(col_a, col_b)):
            order.setdefault(key, []).append(pos)
        typed_a = build_typed_column(col_a)
        typed_b = build_typed_column(col_b)
        groups = kernels.grouped_positions(
            [typed_a.values, typed_b.values], kernels.arange(len(col_a))
        )
        assert groups == list(order.values())

    def test_fd_violating_groups(self):
        lhs = [1, 1, 2, 2, 3, 3, 1]
        rhs = [7, 8, 5, 5, 9, 6, 7]
        typed_l = build_typed_column(lhs)
        typed_r = build_typed_column(rhs)
        count, violating = kernels.fd_violating_groups(
            [typed_l.values], typed_r.values, kernels.arange(len(lhs))
        )
        assert count == 3
        # groups in first-occurrence order: lhs=1 (rows 0,1,6), lhs=3 (rows 4,5)
        assert violating == [[0, 1, 6], [4, 5]]

    def test_search_cuts_match_bisect(self):
        import bisect

        sorted_values = [1, 3, 3, 3, 7, 10]
        probes = [0, 3, 7, 11, 5]
        for op, fn in (
            ("<", lambda v: bisect.bisect_left(sorted_values, v)),
            ("<=", lambda v: bisect.bisect_right(sorted_values, v)),
            (">", lambda v: bisect.bisect_right(sorted_values, v)),
            (">=", lambda v: bisect.bisect_left(sorted_values, v)),
        ):
            cuts = kernels.search_cuts(sorted_values, probes, op)
            assert cuts.tolist() == [fn(v) for v in probes]
        lo, hi = kernels.search_cuts(sorted_values, probes, "=")
        assert lo.tolist() == [bisect.bisect_left(sorted_values, v) for v in probes]
        assert hi.tolist() == [bisect.bisect_right(sorted_values, v) for v in probes]

    def test_search_cuts_values_exact_carry(self):
        # A pre-validated exact array (SortedColumn.exact) skips values-side
        # re-validation and yields the same cuts.
        cells = [7, 1, 3, 10, 3, 3]
        positions = list(range(len(cells)))
        _sorted_pos, exact = kernels.argsort_positions(cells, positions)
        sorted_values = sorted(cells)
        probes = [0, 3, 8]
        plain = kernels.search_cuts(sorted_values, probes, "<")
        carried = kernels.search_cuts(
            sorted_values, probes, "<", values_exact=exact
        )
        assert plain.tolist() == carried.tolist()
        # the probe side still validates even when values are carried
        assert (
            kernels.search_cuts(sorted_values, ["zz"], "<", values_exact=exact)
            is None
        )

    def test_search_cuts_mixed_dtypes_and_declines(self):
        cuts = kernels.search_cuts([1, 2, 3], [1.5, 2.0], "<")
        assert cuts.tolist() == [1, 1]  # bisect_left: 2.0 == 2 cuts left of it
        assert kernels.search_cuts([2**53 + 1, 2**60], [1.5], "<") is None
        assert kernels.search_cuts([1, 2], ["a"], "<") is None
        assert kernels.search_cuts([1, 2], [float("nan")], "<") is None

    def test_numeric_mask_matches_null_semantics(self):
        arr = kernels.numeric_array([1.0, None, 3.0, 2.5])
        mask = kernels.numeric_mask_positions(arr, "<", -math.inf, 3.0, False)
        assert kernels.mask_to_positions(mask) == [0, 3]
        # '!=' prunes only nulls — the oracle returns True for any concrete cell.
        mask = kernels.numeric_mask_positions(arr, "!=", 0.0, 0.0, False)
        assert kernels.mask_to_positions(mask) == [0, 2, 3]
        mask = kernels.numeric_mask_positions(arr, "=", 1.0, 1.0, True)
        assert kernels.mask_to_positions(mask) == []


# -- view-level parity ----------------------------------------------------------------


def make_views(rows, schema=None):
    schema = schema or [("k", ColumnType.INT), ("v", ColumnType.INT)]
    rel = Relation.from_rows(schema, rows, name="t", validate=False)
    v_py = ColumnView.from_relation(rel)
    v_np = ColumnView.from_relation(rel)
    v_np.column_backend = COLUMN_NUMPY
    return v_py, v_np


@needs_numpy
class TestViewParity:
    ROWS = [
        (5, 10),
        (1, 20),
        (5, 10),
        (3, None),
        (None, 40),
        (5, 30),
        (2, 20),
        (1, 20),
    ]

    def test_sorted_hash_and_group_index(self):
        v_py, v_np = make_views(self.ROWS)
        for attr in ("k", "v"):
            s_py, s_np = v_py.sorted_column(attr), v_np.sorted_column(attr)
            assert s_np.values == s_py.values
            assert s_np.positions == s_py.positions
            assert v_np.hash_column(attr) == v_py.hash_column(attr)
            assert list(v_np.hash_column(attr)) == list(v_py.hash_column(attr))
        for keys in (("k",), ("k", "v")):
            assert v_np.group_index(keys) == v_py.group_index(keys)

    def test_filter_positions_and_charges(self):
        v_py, v_np = make_views(self.ROWS)
        for op in OPS:
            for value in (1, 5, 10, 20, 99, None):
                c_py, c_np = WorkCounter(), WorkCounter()
                got_py = v_py.filter_positions("k", op, value, c_py)
                got_np = v_np.filter_positions("k", op, value, c_np)
                assert got_np == got_py, (op, value)
                assert c_np.total() == c_py.total(), (op, value)

    def test_fd_detection_parity_with_charges(self):
        rows = [(i % 5, i % 11, (i * 7) % 3) for i in range(120)]
        schema = [
            ("a", ColumnType.INT),
            ("b", ColumnType.INT),
            ("c", ColumnType.INT),
        ]
        rel = Relation.from_rows(schema, rows, name="t", validate=False)
        v_py = ColumnView.from_relation(rel)
        v_np = ColumnView.from_relation(rel)
        v_np.column_backend = COLUMN_NUMPY
        fd = FunctionalDependency(("a", "c"), "b", name="phi")
        for tids in (None, list(range(0, 120, 3))):
            c_py, c_np = WorkCounter(), WorkCounter()
            r_py = detect_fd_violations(rel, fd, tids=tids, counter=c_py, view=v_py)
            r_np = detect_fd_violations(rel, fd, tids=tids, counter=c_np, view=v_np)
            assert repr(r_np.groups) == repr(r_py.groups)
            assert c_np.total() == c_py.total()

    def test_patched_view_drops_typed_cache(self):
        v_py, v_np = make_views(self.ROWS)
        assert v_np.typed_column("k") is not None
        assert v_np.typed_column("v") is not None
        patched = v_np.patched({(0, "k"): 7})
        assert patched.column_backend == COLUMN_NUMPY
        assert "k" not in patched._typed  # rebuilt lazily from patched cells
        assert "v" in patched._typed  # untouched column's mirror carried over
        s = patched.sorted_column("k")
        ref, _ = make_views([(7,) + r[1:] for r in [self.ROWS[0]]] + self.ROWS[1:])
        assert s.values == ref.sorted_column("k").values


# -- seeded end-to-end forced-backend parity ------------------------------------------


@needs_numpy
class TestEndToEndParity:
    def _run(self, column_backend):
        dirty, fd, _ = ssb.dirty_lineorder(300, 30, 15, seed=5)
        daisy = Daisy(
            config=DaisyConfig(column_backend=column_backend, use_cost_model=False)
        )
        daisy.register_table("lineorder", dirty)
        daisy.add_rule("lineorder", fd)
        queries = workloads.range_queries(
            "lineorder", "suppkey", 15, 5, projection="orderkey, suppkey"
        )
        outputs = []
        with daisy.connect() as session:
            for q in queries:
                result = session.execute(q)
                outputs.append(
                    (
                        [repr(r) for r in result.relation.rows],
                        result.report.errors_fixed,
                    )
                )
        state = daisy.states["lineorder"]
        fingerprints = {
            name: matrix_fingerprint(m, include_sorted=True)
            for name, m in state.matrices.items()
        }
        counter = daisy.work_counter("lineorder")
        return (
            outputs,
            [repr(r) for r in daisy.table("lineorder").rows],
            fingerprints,
            counter.total(),
        )

    def test_numpy_python_auto_identical(self):
        runs = {cb: self._run(cb) for cb in (COLUMN_PYTHON, COLUMN_NUMPY, COLUMN_AUTO)}
        assert runs[COLUMN_NUMPY] == runs[COLUMN_PYTHON]
        assert runs[COLUMN_AUTO] == runs[COLUMN_PYTHON]
