"""Property-based round-trip parity for the NumPy kernel backend.

Hypothesis drives randomized columns — mixed int/float/str cells, nulls,
big ints straddling the 2^53 exactness bound — through both column
backends and asserts byte-identical sorted indexes, hash groups, filter
selections and group indexes, then pushes random patch batches through the
maintained views and asserts the patched numpy view equals both the
python-backend twin and a cold rebuild from the patched relation.

The suite skips when hypothesis or numpy is unavailable (the no-numpy CI
job must stay green without either).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.stats import WorkCounter
from repro.probabilistic.value import cell_compare
from repro.relation import ColumnType, Relation
from repro.relation.columnview import ColumnView
from repro.relation.kernels import COLUMN_NUMPY, HAVE_NUMPY

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Cells deliberately straddle every exactness gate: small ints, ints past
# the 2^53 float bound, ints past int64, finite floats, strings, nulls.
int_cell = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=2**53 - 2, max_value=2**53 + 2),
    st.integers(min_value=2**63 - 2, max_value=2**63 + 2),
)
float_cell = st.floats(allow_nan=False, allow_infinity=False, width=32)
str_cell = st.text(alphabet="abAB é世", max_size=4)

numeric_column = st.lists(
    st.one_of(st.none(), int_cell, float_cell), min_size=0, max_size=40
)
string_column = st.lists(st.one_of(st.none(), str_cell), min_size=0, max_size=40)
mixed_column = st.one_of(
    numeric_column,
    string_column,
    st.lists(
        st.one_of(st.none(), int_cell, float_cell, str_cell, st.booleans()),
        max_size=40,
    ),
)


def make_views(columns: dict[str, list]):
    names = list(columns)
    n = max((len(c) for c in columns.values()), default=0)
    padded = {a: c + [None] * (n - len(c)) for a, c in columns.items()}
    rel = Relation.from_rows(
        [(a, ColumnType.INT) for a in names],
        list(zip(*[padded[a] for a in names])) if n else [],
        name="t",
        validate=False,
    )
    v_py = ColumnView.from_relation(rel)
    v_np = ColumnView.from_relation(rel)
    v_np.column_backend = COLUMN_NUMPY
    return rel, v_py, v_np


def assert_view_parity(v_py: ColumnView, v_np: ColumnView, attrs) -> None:
    for attr in attrs:
        s_py, s_np = v_py.sorted_column(attr), v_np.sorted_column(attr)
        if s_py is None or s_np is None:
            assert s_py is None and s_np is None
        else:
            assert s_np.positions == s_py.positions
            assert repr(s_np.values) == repr(s_py.values)
        h_py, h_np = v_py.hash_column(attr), v_np.hash_column(attr)
        if h_py is None or h_np is None:
            assert h_py is None and h_np is None
        else:
            assert h_np == h_py
            assert repr(list(h_np)) == repr(list(h_py))


@SETTINGS
@given(column=mixed_column, data=st.data())
def test_roundtrip_sorted_hash_filter(column, data):
    _, v_py, v_np = make_views({"k": column})
    assert_view_parity(v_py, v_np, ["k"])
    concrete = [v for v in column if v is not None]
    probe = data.draw(
        st.one_of(st.sampled_from(concrete), int_cell, float_cell, str_cell)
        if concrete
        else st.one_of(int_cell, float_cell, str_cell)
    )
    op = data.draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    c_py, c_np = WorkCounter(), WorkCounter()
    try:
        want = v_py.filter_positions("k", op, probe, c_py)
    except TypeError:
        # unorderable mixed column + inequality: both backends must raise
        with pytest.raises(TypeError):
            v_np.filter_positions("k", op, probe, c_np)
        return
    got = v_np.filter_positions("k", op, probe, c_np)
    assert got == want
    assert c_np.total() == c_py.total()
    oracle = {
        pos for pos, cell in enumerate(column) if cell_compare(cell, op, probe)
    }
    assert got == oracle


@SETTINGS
@given(
    col_a=st.lists(st.one_of(st.none(), st.integers(-5, 5)), max_size=40),
    col_b=st.lists(
        st.one_of(st.none(), st.integers(-3, 3), float_cell), max_size=40
    ),
)
def test_roundtrip_group_index(col_a, col_b):
    _, v_py, v_np = make_views({"a": col_a, "b": col_b})
    for keys in (("a",), ("b",), ("a", "b")):
        order_py, groups_py = v_py.group_index(keys)
        order_np, groups_np = v_np.group_index(keys)
        assert repr(order_np) == repr(order_py)
        assert repr(groups_np) == repr(groups_py)


@SETTINGS
@given(
    column=st.lists(
        st.one_of(st.none(), st.integers(-20, 20), float_cell),
        min_size=1,
        max_size=30,
    ),
    data=st.data(),
)
def test_patch_batches_into_maintained_sort_orders(column, data):
    rel, _, _ = make_views({"k": column})
    rel_py, rel_np = rel, Relation.from_rows(
        rel.schema, [tuple(r.values) for r in rel.rows], name="t", validate=False
    )
    v_py = rel_py.column_view()
    v_np = rel_np.column_view()
    v_np.column_backend = COLUMN_NUMPY
    # Build the maintained indexes *before* patching so patches re-route
    # through the incremental path, not a cold build.
    assert_view_parity(v_py, v_np, ["k"])

    n = len(column)
    for _ in range(data.draw(st.integers(1, 3))):
        batch = {
            (tid, "k"): value
            for tid, value in zip(
                data.draw(
                    st.lists(
                        st.integers(0, n - 1), min_size=1, max_size=5, unique=True
                    )
                ),
                data.draw(
                    st.lists(
                        st.one_of(st.none(), st.integers(-20, 20), float_cell),
                        min_size=5,
                        max_size=5,
                    )
                ),
            )
        }
        rel_py = rel_py.update_cells(batch)
        rel_np = rel_np.update_cells(batch)
        v_py, v_np = rel_py.column_view(), rel_np.column_view()
        assert v_np.column_backend == COLUMN_NUMPY  # carried through patches
        assert_view_parity(v_py, v_np, ["k"])

    # Cold rebuild vs patched under the numpy backend: same indexes.
    cold = ColumnView.from_relation(rel_np)
    cold.column_backend = COLUMN_NUMPY
    s_patched, s_cold = v_np.sorted_column("k"), cold.sorted_column("k")
    assert (s_patched is None) == (s_cold is None)
    if s_patched is not None:
        assert s_patched.positions == s_cold.positions
        assert repr(s_patched.values) == repr(s_cold.values)
    assert v_np.hash_column("k") == cold.hash_column("k")
