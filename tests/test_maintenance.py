"""Incremental theta-join matrix maintenance: unit tests.

The contract: a matrix patched from the ColumnView patch stream is
**byte-identical** — stripes (tids and constraint-attribute values),
bounding boxes, per-stripe sort orders, tid routing — to a matrix
cold-rebuilt from the same source snapshot, and only cells involving an
affected stripe lose their checked mark.
"""

from __future__ import annotations

import pytest

from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.detection.maintenance import (
    MaintenancePolicy,
    matrix_fingerprint,
    sync_matrix,
    validate_maintenance_mode,
)
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.probabilistic.value import Candidate, PValue
from repro.relation import ColumnType, Relation
from repro.relation.columnview import PATCH_DATA, PATCH_REPAIR


def numbers_dc() -> DenialConstraint:
    return DenialConstraint(
        [
            Predicate(0, "price", "<", 1, "price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )


def numbers_relation(n: int = 240) -> Relation:
    return Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        [(i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6)) for i in range(n)],
        name="lineorder",
    )


def build_matrix(rel, backend="columnar", sqrt_p=6) -> ThetaJoinMatrix:
    return ThetaJoinMatrix(
        rel, numbers_dc(), sqrt_p=sqrt_p, counter=WorkCounter(), backend=backend
    )


def assert_matches_cold(matrix: ThetaJoinMatrix, rel: Relation) -> None:
    """Patched matrix must be structurally identical to a cold rebuild and
    return byte-identical violations + work units on a full check."""
    cold = build_matrix(rel, backend=matrix.backend, sqrt_p=matrix.sqrt_p)
    include_sorted = matrix.backend == "columnar"
    assert matrix_fingerprint(matrix, include_sorted) == matrix_fingerprint(
        cold, include_sorted
    )
    cold.checked_cells = set(matrix.checked_cells)
    fresh_a, fresh_b = WorkCounter(), WorkCounter()
    matrix.counter, cold.counter = fresh_a, fresh_b
    assert matrix.check_full() == cold.check_full()
    assert fresh_a.as_dict() == fresh_b.as_dict()


class TestSyncMatrix:
    @pytest.mark.parametrize("backend", ["columnar", "rowstore"])
    def test_content_only_patch_matches_cold_rebuild(self, backend):
        rel = numbers_relation()
        matrix = build_matrix(rel, backend)
        matrix.check_full()
        updates = {(20, "discount"): 0.9, (100, "discount"): 0.8}
        report = sync_matrix(matrix, updates, MaintenancePolicy(mode="patch"))
        assert report.action == "patch"
        assert report.tids_rerouted == 0
        assert report.stripes_rebuilt == 0  # membership/order unchanged
        assert report.stripes_patched >= 1
        assert_matches_cold(matrix, rel.update_cells(updates))

    @pytest.mark.parametrize("backend", ["columnar", "rowstore"])
    def test_primary_move_reroutes_to_cold_rebuild_position(self, backend):
        rel = numbers_relation()
        matrix = build_matrix(rel, backend)
        matrix.check_full()
        # Move rows across stripes (large primary jumps) and nudge one in
        # place (same stripe, different sort position).
        updates = {
            (5, "price"): 2000.0,
            (200, "price"): 101.0,
            (40, "price"): 502.5,
        }
        report = sync_matrix(matrix, updates, MaintenancePolicy(mode="patch"))
        assert report.action == "patch"
        assert report.tids_rerouted >= 2
        assert_matches_cold(matrix, rel.update_cells(updates))

    def test_duplicate_keys_tiebreak_like_stable_sort(self):
        # Several rows collapse onto the same primary value: the re-insert
        # must land them exactly where a stable sort (relation row order)
        # would.
        rel = numbers_relation(60)
        matrix = build_matrix(rel, sqrt_p=4)
        updates = {(50, "price"): 300.0, (10, "price"): 300.0, (30, "price"): 300.0}
        sync_matrix(matrix, updates, MaintenancePolicy(mode="patch"))
        assert_matches_cold(matrix, rel.update_cells(updates))

    def test_pvalue_update_lands_in_uncertain_set(self):
        rel = numbers_relation(80)
        matrix = build_matrix(rel, sqrt_p=4)
        pv = PValue([Candidate(0.5, 0.7), Candidate(0.01, 0.3)])
        updates = {(12, "discount"): pv}
        sync_matrix(matrix, updates, MaintenancePolicy(mode="patch"))
        assert_matches_cold(matrix, rel.update_cells(updates))
        stripe = matrix._stripe_of_tid[12]
        cols = matrix._stripe_cols[stripe]
        pos = next(k for k, r in enumerate(matrix.stripes[stripe]) if r.tid == 12)
        assert pos in cols.uncertain["discount"]

    def test_membership_change_forces_rebuild(self):
        rel = numbers_relation(50)
        matrix = build_matrix(rel, sqrt_p=4)
        matrix.check_full()
        report = sync_matrix(
            matrix, {(7, "price"): None}, MaintenancePolicy(mode="patch")
        )
        assert report.action == "rebuild"
        assert "membership" in report.reason
        assert matrix.checked_cells == set()
        assert_matches_cold(matrix, rel.update_cells({(7, "price"): None}))

    def test_irrelevant_updates_are_noop(self):
        rel = numbers_relation(50)
        matrix = build_matrix(rel, sqrt_p=4)
        matrix.check_full()
        checked_before = set(matrix.checked_cells)
        report = sync_matrix(matrix, {(3, "orderkey"): 999})
        assert report.action == "noop"
        assert matrix.checked_cells == checked_before

    def test_absent_tids_ignored(self):
        rel = numbers_relation(30)
        matrix = build_matrix(rel, sqrt_p=3)
        report = sync_matrix(matrix, {(999, "price"): 1.0})
        assert report.action == "noop"

    def test_only_affected_cells_invalidated(self):
        rel = numbers_relation(240)
        matrix = build_matrix(rel, sqrt_p=6)
        matrix.check_full()
        total = matrix.total_cells()
        assert len(matrix.checked_cells) == total
        # One content-only touch in a single stripe.
        stripe = matrix._stripe_of_tid[30]
        report = sync_matrix(
            matrix, {(30, "discount"): 0.7}, MaintenancePolicy(mode="patch")
        )
        s = matrix.num_stripes()
        expected_invalid = {
            (i, j)
            for i in range(s)
            for j in range(i, s)
            if i == stripe or j == stripe
        }
        assert report.invalidated == expected_invalid
        assert matrix.checked_cells == {
            (i, j) for i in range(s) for j in range(i, s)
        } - expected_invalid
        # Re-checking covers exactly the invalidated cells.
        assert set(matrix.candidate_cells()) == expected_invalid

    def test_rebuild_mode_keeps_diff_based_bookkeeping(self):
        """The strategy governs structure derivation only: a wholesale
        rebuild invalidates exactly the cells the patch path would."""
        rel = numbers_relation(100)
        twin_a = build_matrix(rel, sqrt_p=4)
        twin_b = build_matrix(rel, sqrt_p=4)
        twin_a.check_full()
        twin_b.check_full()
        updates = {(5, "discount"): 0.4}
        rep_a = sync_matrix(twin_a, updates, MaintenancePolicy(mode="rebuild"))
        rep_b = sync_matrix(twin_b, updates, MaintenancePolicy(mode="patch"))
        assert rep_a.action == "rebuild" and rep_b.action == "patch"
        assert rep_a.invalidated == rep_b.invalidated
        assert twin_a.checked_cells == twin_b.checked_cells
        assert twin_a.checked_cells != set()  # unaffected cells survive
        assert_matches_cold(twin_a, rel.update_cells(updates))
        assert_matches_cold(twin_b, rel.update_cells(updates))

    def test_auto_mode_rebuilds_for_bulk_updates(self):
        rel = numbers_relation(100)
        matrix = build_matrix(rel, sqrt_p=4)
        updates = {(t, "price"): 5000.0 - t for t in range(90)}
        report = sync_matrix(matrix, updates, MaintenancePolicy(mode="auto"))
        assert report.action == "rebuild"
        assert report.est_patch_cost > report.est_rebuild_cost
        assert_matches_cold(matrix, rel.update_cells(updates))

    def test_per_stripe_rebuild_threshold(self):
        rel = numbers_relation(120)
        matrix = build_matrix(rel, sqrt_p=3)  # 40 rows per stripe
        # Touch most of stripe 0's rows: the per-stripe hook re-derives it.
        tids = [t for t, s in matrix._stripe_of_tid.items() if s == 0][:30]
        updates = {(t, "discount"): 0.5 for t in tids}
        policy = MaintenancePolicy(mode="patch", stripe_rebuild_fraction=0.5)
        sync_matrix(matrix, updates, policy)
        assert_matches_cold(matrix, rel.update_cells(updates))

    def test_validate_maintenance_mode(self):
        assert validate_maintenance_mode("auto") == "auto"
        with pytest.raises(ValueError):
            validate_maintenance_mode("lazy")
        with pytest.raises(ValueError):
            MaintenancePolicy(mode="auto", rebuild_margin=0)
        with pytest.raises(ValueError):
            DaisyConfig(matrix_maintenance="bogus")


class TestPatchStream:
    def test_patched_view_records_batch_and_notifies(self):
        rel = numbers_relation(10)
        view = rel.column_view()
        seen = []
        unsubscribe = view.subscribe(lambda v, b: seen.append((v.version, b)))
        updated = rel.update_cells({(1, "discount"): 0.5})
        batch = updated.column_view().last_patch
        assert batch is not None
        assert batch.origin == PATCH_DATA
        assert batch.updates == {(1, "discount"): 0.5}
        assert batch.touched == {"discount": (1,)}
        assert [v for v, _b in seen] == [batch.version]
        # The listener list is carried: patching the *new* view notifies too.
        updated2 = updated.update_cells({(2, "price"): 1.0})
        assert len(seen) == 2
        assert updated2.column_view().last_patch.base_version == batch.version
        unsubscribe()
        updated2.update_cells({(3, "price"): 2.0})
        assert len(seen) == 2

    def test_repair_patches_are_tagged(self):
        rel = numbers_relation(10)
        rel.column_view()
        updated = rel.update_cells({(1, "discount"): 0.5}, origin=PATCH_REPAIR)
        assert updated.column_view().last_patch.origin == PATCH_REPAIR

    def test_absent_tids_not_in_batch(self):
        rel = numbers_relation(10)
        rel.column_view()
        updated = rel.update_cells({(1, "discount"): 0.5, (99, "discount"): 0.1})
        assert updated.column_view().last_patch.updates == {(1, "discount"): 0.5}

    def test_relation_update_rows_emits_cell_diff_batch(self):
        from repro.relation import Row

        rel = numbers_relation(10)
        rel.column_view()
        old = rel.tid_index()[4]
        vals = list(old.values)
        vals[2] = 0.42  # discount
        updated = rel.update_rows({4: Row(4, tuple(vals))})
        batch = updated.column_view().last_patch
        assert batch.updates == {(4, "discount"): 0.42}
        assert updated.tid_index()[4].values[2] == 0.42


class TestTableStateLifecycle:
    def _daisy(self, mode="auto", n=240):
        rel = numbers_relation(n)
        daisy = Daisy(
            config=DaisyConfig(use_cost_model=False, matrix_maintenance=mode)
        )
        daisy.register_table("lineorder", rel)
        daisy.add_rule("lineorder", numbers_dc())
        return daisy

    def test_update_table_syncs_matrix_lazily(self):
        daisy = self._daisy(mode="patch")
        state = daisy.states["lineorder"]
        report = daisy.update_table(
            "lineorder", {(5, "price"): 1234.5, (9, "discount"): 0.3}
        )
        assert report.cells_applied == 2
        assert report.epoch == 1
        assert state.patch_log  # pending until the matrix is used
        assert not state.maintenance_log
        matrix = state.matrix_for(numbers_dc())
        assert state.maintenance_log[-1].action == "patch"
        assert state.matrix_epochs["dc_price_discount"] == 1
        assert not state.patch_log  # trimmed once every matrix synced
        assert_matches_cold(matrix, state.relation)

    def test_chained_batches_coalesce(self):
        daisy = self._daisy(mode="patch")
        state = daisy.states["lineorder"]
        daisy.update_table("lineorder", {(5, "price"): 1000.0})
        daisy.update_table("lineorder", {(5, "price"): 2000.0, (7, "discount"): 0.6})
        daisy.update_table("lineorder", {(11, "price"): 150.5})
        matrix = state.matrix_for(numbers_dc())
        assert state.data_epoch == 3
        assert_matches_cold(matrix, state.relation)

    def test_update_rows_reduces_to_cell_diff(self):
        daisy = self._daisy(mode="patch")
        state = daisy.states["lineorder"]
        from repro.relation import Row

        old = state.relation.tid_index()[8]
        new_values = list(old.values)
        new_values[1] = 999.5  # price
        report = daisy.update_rows("lineorder", [Row(8, tuple(new_values))])
        assert report.cells_applied == 1
        assert report.attrs_touched == {"price"}
        matrix = state.matrix_for(numbers_dc())
        assert_matches_cold(matrix, state.relation)

    def test_update_invalidates_rule_progress(self):
        daisy = self._daisy()
        state = daisy.states["lineorder"]
        dc = numbers_dc()
        key = "dc_price_discount"
        state.mark_seen(dc, {5, 6, 7})
        state.mark_fully_cleaned(dc)
        state.provenance.mark_checked(key, {"g1"})
        report = daisy.update_table("lineorder", {(5, "price"): 1.5})
        assert key in report.rules_invalidated
        assert not state.is_fully_cleaned(dc)
        assert state.seen_for(dc) == {6, 7}
        assert state.provenance.checked(key) == set()

    def test_same_value_updates_are_noops(self):
        """Re-sending current values (idempotent upsert streams) must not
        bump the epoch, rebuild statistics, or invalidate rule progress —
        matching the row form's cell-diff semantics."""
        daisy = self._daisy()
        state = daisy.states["lineorder"]
        dc = numbers_dc()
        state.mark_seen(dc, {5})
        state.mark_fully_cleaned(dc)
        current_price = state.relation.tid_index()[5].values[1]
        report = daisy.update_table("lineorder", {(5, "price"): current_price})
        assert report.cells_applied == 0
        assert state.data_epoch == 0
        assert state.is_fully_cleaned(dc)
        assert state.seen_for(dc) == {5}
        assert not state.patch_log
        # Mixed batch: only the really-changed cell counts.
        report = daisy.update_table(
            "lineorder", {(5, "price"): current_price, (6, "discount"): 0.7}
        )
        assert report.cells_applied == 1
        assert state.data_epoch == 1

    def test_update_forgets_provenance_of_touched_cells(self):
        daisy = self._daisy()
        state = daisy.states["lineorder"]
        state.provenance.record_original(5, "price", 150.0, "dc_price_discount")
        report = daisy.update_table("lineorder", {(5, "price"): 777.0})
        assert report.provenance_forgotten == 1
        assert state.provenance.original(5, "price") is None

    def test_confirming_a_repaired_value_still_applies(self):
        """Re-sending a repaired cell's *current* value is not a no-op: the
        external source is confirming the repair as ground truth, so the
        obsolete provenance original must go and the matrix source must
        advance to the confirmed value."""
        daisy = self._daisy(mode="patch")
        state = daisy.states["lineorder"]
        current = state.relation.tid_index()[5].values[1]  # price
        state.provenance.record_original(5, "price", 150.0, "dc_price_discount")
        report = daisy.update_table("lineorder", {(5, "price"): current})
        assert report.cells_applied == 1
        assert report.provenance_forgotten == 1
        assert state.provenance.original(5, "price") is None
        assert state.data_epoch == 1
        matrix = state.matrix_for(numbers_dc())
        assert_matches_cold(matrix, state.relation)

    def test_row_form_confirms_repaired_cells_like_cell_form(self):
        """Replacing a row whose repaired cell keeps its current value must
        apply like the cell form does — both APIs invalidate identically."""
        from repro.relation import Row

        daisy = self._daisy(mode="patch")
        state = daisy.states["lineorder"]
        state.provenance.record_original(5, "price", 150.0, "dc_price_discount")
        same_row = state.relation.tid_index()[5]
        report = daisy.update_rows(
            "lineorder", [Row(5, tuple(same_row.values))]
        )
        assert report.cells_applied == 1  # the confirmed repaired cell
        assert report.provenance_forgotten == 1
        assert state.provenance.original(5, "price") is None
        matrix = state.matrix_for(numbers_dc())
        assert_matches_cold(matrix, state.relation)

    def test_malformed_replacement_row_raises(self):
        from repro.errors import SchemaError
        from repro.relation import Row

        daisy = self._daisy()
        with pytest.raises(SchemaError, match="arity"):
            daisy.update_rows("lineorder", [Row(3, (1.0, 2.0))])  # 2 of 3 cols
        # Nothing was partially applied.
        assert daisy.states["lineorder"].data_epoch == 0

    def test_update_refreshes_fd_statistics(self):
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "a"), (1, "a"), (2, "b")],
            name="cities",
        )
        daisy = Daisy(config=DaisyConfig(use_cost_model=False))
        daisy.register_table("cities", rel)
        daisy.add_rule("cities", "zip -> city")
        state = daisy.states["cities"]
        key = state.rules[0].name or str(state.rules[0])
        assert state.statistics.get(key).dirty_group_count() == 0
        report = daisy.update_table("cities", {(1, "city"): "c"})
        assert key in report.stats_rebuilt
        assert state.statistics.get(key).dirty_group_count() == 1

    def test_data_epoch_refreshes_session_cost_model(self):
        daisy = self._daisy()
        with daisy.connect() as session:
            model_before = session._cost_model("lineorder")
            assert session._cost_model("lineorder") is model_before  # cached
            daisy.update_table("lineorder", {(5, "discount"): 0.9})
            model_after = session._cost_model("lineorder")
            assert model_after is not model_before

    def test_update_does_not_invalidate_plan_cache(self):
        daisy = self._daisy()
        with daisy.connect() as session:
            q = "SELECT orderkey FROM lineorder WHERE price < 500"
            session.execute(q)
            daisy.update_table("lineorder", {(5, "discount"): 0.9})
            session.execute(q)
            assert session.plan_cache_hits == 1

    def test_unknown_attribute_raises_schema_error_either_way(self):
        """The error type must not depend on whether the columnar view is
        already cached."""
        from repro.errors import SchemaError

        cold = self._daisy()
        with pytest.raises(SchemaError):
            cold.update_table("lineorder", {(0, "nosuch"): 5})
        warm = self._daisy()
        warm.states["lineorder"].column_view()  # cache the view first
        with pytest.raises(SchemaError):
            warm.update_table("lineorder", {(0, "nosuch"): 5})

    def test_parallel_shard_cache_resplits_on_update(self):
        from repro.parallel import ParallelContext

        daisy = self._daisy(n=40)
        state = daisy.states["lineorder"]
        context = ParallelContext("thread", 2, num_shards=2)
        try:
            before = context.shards_for(state)
            assert context.shards_for(state) is before  # cached
            daisy.update_table("lineorder", {(3, "price"): 9999.0})
            after = context.shards_for(state)
            assert after is not before
            # The fresh split's shard views see the updated value.
            assert 3 in after.filter_tids("price", "=", 9999.0)
        finally:
            context.close()

    def test_patch_log_stays_bounded_with_lagging_matrix(self):
        from repro.core.state import _PATCH_LOG_SOFT_LIMIT

        daisy = self._daisy(mode="patch", n=60)
        state = daisy.states["lineorder"]
        # Never touch the matrix: the soft limit must force a sync rather
        # than let the log grow with every batch.
        for k in range(_PATCH_LOG_SOFT_LIMIT + 10):
            daisy.update_table(
                "lineorder", {(k % 60, "discount"): 0.2 + (k % 9) * 0.01}
            )
        assert len(state.patch_log) <= _PATCH_LOG_SOFT_LIMIT
        matrix = state.matrix_for(numbers_dc())
        assert_matches_cold(matrix, state.relation)

    def test_rowstore_backend_update_path(self):
        rel = numbers_relation(100)
        daisy = Daisy(
            config=DaisyConfig(
                use_cost_model=False, backend="rowstore",
                matrix_maintenance="patch",
            )
        )
        daisy.register_table("lineorder", rel)
        daisy.add_rule("lineorder", numbers_dc())
        state = daisy.states["lineorder"]
        report = daisy.update_table("lineorder", {(5, "price"): 1234.5})
        assert report.cells_applied == 1
        matrix = state.matrix_for(numbers_dc())
        assert_matches_cold(matrix, state.relation)
