"""Tests for clean_sigma / clean_join / clean_full_table (paper Examples 2/3/6)."""

import pytest

from repro.constraints import DenialConstraint, FunctionalDependency, Predicate
from repro.core import TableState, clean_full_table, clean_join, clean_sigma
from repro.probabilistic import PValue, join_with_lineage
from repro.relation import ColumnType, Relation


def make_cities():
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )


def make_state(relation=None, rules=()):
    state = TableState(relation=relation if relation is not None else make_cities())
    for rule in rules:
        state.add_rule(rule)
    return state


@pytest.fixture
def fd():
    return FunctionalDependency("zip", "city", name="phi")


class TestCleanSigmaFd:
    def test_example2_rhs_query(self, fd):
        state = make_state(rules=[fd])
        report = clean_sigma(state, {0, 2}, where_attrs=["city"], projection=["zip"])
        rel = state.relation
        # Rows 3 and 4 must stay concrete (Table 2b).
        assert not isinstance(rel.row_by_tid(3).values[1], PValue)
        assert not isinstance(rel.row_by_tid(4).values[1], PValue)
        # Row 1's zip has candidates {9001, 10001}.
        zip_cell = rel.row_by_tid(1).values[0]
        assert isinstance(zip_cell, PValue)
        assert set(zip_cell.concrete_values()) == {9001, 10001}
        assert report.errors_fixed > 0

    def test_example3_lhs_query_repairs_cluster(self, fd):
        state = make_state(rules=[fd])
        clean_sigma(state, {0, 1, 2}, where_attrs=["zip"], projection=["city"])
        rel = state.relation
        # Both groups repaired (Table 3).
        assert isinstance(rel.row_by_tid(4).values[1], PValue)
        # Result of zip=9001 now includes tid 3 through its zip candidates.
        assert {r.tid for r in rel.where("zip", "=", 9001)} == {0, 1, 2, 3}

    def test_irrelevant_rule_skipped(self, fd):
        state = make_state(rules=[fd])
        report = clean_sigma(state, {0}, where_attrs=["name"], projection=["name"])
        assert report.errors_fixed == 0
        assert state.relation.probabilistic_cell_count() == 0

    def test_second_query_skips_checked_groups(self, fd):
        state = make_state(rules=[fd])
        clean_sigma(state, {0, 2}, where_attrs=["city"], projection=["zip"])
        first_fixes = state.relation.probabilistic_cell_count()
        report2 = clean_sigma(state, {0, 2}, where_attrs=["city"], projection=["zip"])
        assert report2.errors_fixed == 0
        assert state.relation.probabilistic_cell_count() == first_fixes

    def test_statistics_pruning_skips_clean_answers(self, fd):
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "A"), (1, "A"), (2, "B"), (2, "C")],
        )
        state = make_state(rel, rules=[fd])
        before = state.counter.tuples_scanned
        # Query touching only the clean group (zip=1): pruning must avoid
        # any relaxation scan.
        report = clean_sigma(state, {0, 1}, where_attrs=["zip"], projection=["city"])
        assert report.extra_tuples == 0
        assert report.errors_fixed == 0

    def test_fully_cleaned_rule_skipped(self, fd):
        state = make_state(rules=[fd])
        state.mark_fully_cleaned(fd)
        report = clean_sigma(state, {0, 2}, where_attrs=["city"], projection=["zip"])
        assert report.errors_fixed == 0


class TestCleanSigmaDc:
    def dc(self):
        return DenialConstraint(
            [
                Predicate(0, "salary", "<", 1, "salary"),
                Predicate(0, "tax", ">", 1, "tax"),
            ],
            name="dc",
        )

    def test_dc_repair_produces_ranges(self, salary_tax_relation):
        state = make_state(salary_tax_relation, rules=[self.dc()])
        report = clean_sigma(
            state, {0, 1, 2}, where_attrs=["salary"], projection=["tax"],
            dc_error_threshold=0.99,
        )
        assert report.errors_fixed > 0
        assert state.relation.probabilistic_cell_count() > 0

    def test_dc_full_cleaning_on_low_threshold(self):
        # Shuffled tax values: the Algorithm 2 estimator must predict a high
        # error rate and escalate to a full matrix check.
        import random

        rng = random.Random(4)
        rows = [(float(i), rng.uniform(0, 1)) for i in range(100)]
        rel = Relation.from_rows(
            [("salary", ColumnType.FLOAT), ("tax", ColumnType.FLOAT)], rows
        )
        state = make_state(rel, rules=[self.dc()])
        report = clean_sigma(
            state, set(range(10)), where_attrs=["salary"], projection=["tax"],
            dc_error_threshold=0.0001,
        )
        assert report.used_full_matrix
        assert state.is_fully_cleaned(self.dc())


class TestCleanFullTable:
    def test_marks_rules_cleaned(self, fd):
        state = make_state(rules=[fd])
        report = clean_full_table(state)
        assert state.is_fully_cleaned(fd)
        assert report.errors_fixed > 0
        # Both violating groups repaired.
        assert isinstance(state.relation.row_by_tid(4).values[1], PValue)

    def test_equivalent_to_offline_violation_coverage(self, fd):
        from repro.detection import detect_fd_violations

        state = make_state(rules=[fd])
        clean_full_table(state)
        # After full cleaning every original violating tid is probabilistic
        # in the rhs.
        report = detect_fd_violations(make_cities(), fd)
        for tid in report.violating_tids():
            assert isinstance(state.relation.row_by_tid(tid).values[1], PValue)


class TestCleanJoin:
    def test_example6_join(self):
        """Tables 4a/4b → Table 4e."""
        cities = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(9001, "Los Angeles"), (9001, "San Francisco"), (10001, "San Francisco")],
            name="C",
        )
        employee = Relation.from_rows(
            [("zip", ColumnType.INT), ("name", ColumnType.STRING), ("phone", ColumnType.INT)],
            [(9001, "Peter", 23456), (10001, "Mary", 12345), (10002, "Jon", 12345)],
            name="E",
        )
        phi1 = FunctionalDependency("zip", "city", name="phi1")
        phi2 = FunctionalDependency("phone", "zip", name="phi2")
        c_state = make_state(cities, rules=[phi1])
        e_state = make_state(employee, rules=[phi2])

        # Query: filter cities on LA, then clean the filtered part (cleanσ).
        answer = {r.tid for r in cities.where("city", "=", "Los Angeles")}
        clean_sigma(c_state, answer, where_attrs=["city"], projection=["zip"])

        # Join qualifying cities part with employees.
        qualifying = {
            r.tid
            for r in c_state.relation.rows
            if r.tid in answer
            or (isinstance(r.values[1], PValue) and r.values[1].matches("Los Angeles"))
        }
        left = c_state.relation.restrict_tids(qualifying)
        jr = join_with_lineage(left, e_state.relation, "zip", "zip", "C", "E")

        def is_la(row):
            cell = row.values[1]
            if isinstance(cell, PValue):
                return cell.matches("Los Angeles")
            return cell == "Los Angeles"

        updated, report = clean_join(c_state, e_state, jr, left_filter=is_la)

        # Table 4e: Peter matches twice (via 9001 and candidate 9001),
        # Mary and Jon match the probabilistic zips.
        names = sorted(
            row.values[updated.relation.schema.index_of("E.name")]
            for row in updated.relation.rows
        )
        assert names == ["Jon", "Mary", "Peter", "Peter"]
        # Employee zips got repaired by phi2 (Mary/Jon share phone 12345).
        assert e_state.relation.probabilistic_cell_count() > 0

    def test_clean_join_no_rules_is_noop(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,), (2,)], name="L")
        right = Relation.from_rows([("k", ColumnType.INT)], [(1,), (3,)], name="R")
        l_state = make_state(left)
        r_state = make_state(right)
        jr = join_with_lineage(left, right, "k", "k")
        updated, report = clean_join(l_state, r_state, jr)
        assert len(updated.relation) == 1
        assert report.errors_fixed == 0

    def test_lemma5_no_new_violations_after_update(self):
        """The updated join result needs no further checks: re-cleaning is
        a no-op."""
        cities = make_cities()
        phi = FunctionalDependency("zip", "city", name="phi")
        c_state = make_state(cities, rules=[phi])
        other = Relation.from_rows(
            [("zip", ColumnType.INT), ("x", ColumnType.INT)],
            [(9001, 1), (10001, 2)],
            name="O",
        )
        o_state = make_state(other)
        jr = join_with_lineage(c_state.relation, o_state.relation, "zip", "zip")
        updated, first = clean_join(c_state, o_state, jr)
        again, second = clean_join(c_state, o_state, updated)
        assert second.errors_fixed == 0
        assert len(again.relation) == len(updated.relation)
