"""End-to-end checks of every worked example and lemma in the paper.

These tests pin the reproduction to the paper's own numbers: candidate sets
and probabilities from Tables 2b/3/4e, the Example 5 range fixes, the
Example 1 employees scenario, and the correctness/termination claims of
Lemmas 1-5.
"""

import math

import pytest

from repro import Daisy
from repro.constraints import (
    DenialConstraint,
    FilterSide,
    FunctionalDependency,
    Predicate,
)
from repro.core.relaxation import relax_fd
from repro.probabilistic import PValue, ValueRange
from repro.relation import ColumnType, Relation


class TestExample1Employees:
    """Table 1: Jon/Jim share zip 9001 with conflicting cities."""

    def test_los_angeles_analysis_recovers_jim(self, employees_relation):
        daisy = Daisy()
        daisy.register_table("employees", employees_relation)
        daisy.add_rule("employees", "zip -> city")
        result = daisy.execute(
            "SELECT name FROM employees WHERE city = 'Los Angeles'"
        )
        names = {row.values[0] for row in result.relation.rows}
        # Jim's city may be Los Angeles after cleaning: he joins the result.
        assert names == {"Jon", "Jim"}

    def test_mary_jane_not_touched(self, employees_relation):
        # zip 10001 and 10002 both map to New York — no violation there.
        daisy = Daisy(use_cost_model=False)
        daisy.register_table("employees", employees_relation)
        daisy.add_rule("employees", "zip -> city")
        daisy.execute("SELECT name FROM employees WHERE city = 'Los Angeles'")
        rel = daisy.table("employees")
        assert not isinstance(rel.row_by_tid(2).values[2], PValue)
        assert not isinstance(rel.row_by_tid(3).values[2], PValue)


class TestTable2bProbabilities:
    """Exact candidate probabilities of the partially-clean version."""

    @pytest.fixture
    def cleaned(self, cities_relation):
        # Without the cost model: pin the exact Table 2b intermediate state
        # (the strategy switch would otherwise clean the 10001 group too).
        daisy = Daisy(use_cost_model=False)
        daisy.register_table("cities", cities_relation)
        daisy.add_rule("cities", "zip -> city", name="phi")
        daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        return daisy.table("cities")

    def test_tuple0_city_candidates(self, cleaned):
        cell = cleaned.row_by_tid(0).values[1]
        assert isinstance(cell, PValue)
        # P(City|Zip=9001) = {LA 2/3, SF 1/3}
        assert math.isclose(cell.probability_of("Los Angeles"), 2 / 3, abs_tol=0.01)

    def test_tuple1_zip_candidates_fifty_fifty_within_world(self, cleaned):
        cell = cleaned.row_by_tid(1).values[0]
        assert isinstance(cell, PValue)
        # P(Zip|City=SF) = {9001 50%, 10001 50%} within the fix-lhs world.
        world2 = [c for c in cell.candidates if c.world == 2]
        assert {c.value for c in world2} == {9001, 10001}
        probs = sorted(c.prob for c in world2)
        assert math.isclose(probs[0], probs[1], abs_tol=1e-9)

    def test_tuples_3_4_untouched(self, cleaned):
        for tid in (3, 4):
            row = cleaned.row_by_tid(tid)
            assert not isinstance(row.values[0], PValue)
            assert not isinstance(row.values[1], PValue)


class TestTable3Result:
    """The lhs-filter query returns exactly the four tuples of Table 3."""

    def test_result_tids(self, cities_relation):
        daisy = Daisy(use_cost_model=False)
        daisy.register_table("cities", cities_relation)
        daisy.add_rule("cities", "zip -> city", name="phi")
        result = daisy.execute("SELECT city FROM cities WHERE zip = 9001")
        assert {r.tid for r in result.relation.rows} == {0, 1, 2, 3}

    def test_tuple4_repaired_but_not_in_result(self, cities_relation):
        daisy = Daisy(use_cost_model=False)
        daisy.register_table("cities", cities_relation)
        daisy.add_rule("cities", "zip -> city", name="phi")
        daisy.execute("SELECT city FROM cities WHERE zip = 9001")
        rel = daisy.table("cities")
        # (10001, New York) was repaired by the closure (Table 3 shows its
        # city as {SF 50%, NY 50%}) yet its zip stays 10001 — excluded.
        assert isinstance(rel.row_by_tid(4).values[1], PValue)
        assert not isinstance(rel.row_by_tid(4).values[0], PValue)


class TestExample5RangeFixes:
    def test_fix_values_match_paper(self, salary_tax_relation):
        from repro.detection.thetajoin import ViolationPair
        from repro.repair import compute_dc_fixes

        dc = DenialConstraint(
            [
                Predicate(0, "salary", "<", 1, "salary"),
                Predicate(0, "tax", ">", 1, "tax"),
            ]
        )
        delta = compute_dc_fixes(salary_tax_relation, dc, [ViolationPair(2, 1)])
        # t2 = (3000, 0.2): salary ∈ {3000, <~2000}, tax ∈ {0.2, >=0.3}
        sal = delta.fixes[(1, "salary")].to_pvalue()
        assert math.isclose(sal.probability_of(3000), 0.5)
        tax_values = delta.fixes[(1, "tax")].values()
        ranges = [v for v in tax_values if isinstance(v, ValueRange)]
        assert ranges[0].low == 0.3 and not ranges[0].low_open


class TestLemmas:
    def test_lemma1_one_iteration_rhs(self, cities_relation, zip_city_fd):
        result = relax_fd(cities_relation, {0, 2}, zip_city_fd, FilterSide.RHS)
        assert result.iterations == 1

    def test_lemma2_lhs_needs_more_iterations(self, cities_relation, zip_city_fd):
        result = relax_fd(cities_relation, {0, 1, 2}, zip_city_fd, FilterSide.LHS)
        assert result.iterations > 1

    def test_lemma3_bound_holds_on_random_data(self):
        import random

        from repro.core.relaxation import estimate_relaxed_size

        rng = random.Random(0)
        rows = [(rng.randrange(8), rng.randrange(8)) for _ in range(60)]
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], rows
        )
        fd = FunctionalDependency("a", "b")
        answer = set(range(10))
        bound = estimate_relaxed_size(rel, answer, fd)
        one_iter = relax_fd(rel, answer, fd, FilterSide.LHS, max_iterations=1)
        assert len(one_iter.extra_tids) <= bound

    def test_lemma5_join_update_stable(self):
        """Re-cleaning an updated join result finds nothing new."""
        from repro.core import TableState, clean_join
        from repro.probabilistic import join_with_lineage

        left = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "A"), (1, "B"), (2, "C")],
            name="L",
        )
        right = Relation.from_rows(
            [("zip", ColumnType.INT), ("x", ColumnType.INT)],
            [(1, 10), (2, 20)],
            name="R",
        )
        l_state = TableState(relation=left)
        l_state.add_rule(FunctionalDependency("zip", "city", name="f"))
        r_state = TableState(relation=right)
        jr = join_with_lineage(l_state.relation, r_state.relation, "zip", "zip")
        updated, first = clean_join(l_state, r_state, jr)
        again, second = clean_join(l_state, r_state, updated)
        assert second.errors_fixed == 0
        assert len(again.relation) == len(updated.relation)


class TestIncrementalSeenTuples:
    """The Section 5.2.2 memory: later queries scan less."""

    def test_second_query_scans_fewer_tuples(self):
        from repro.core import TableState, clean_sigma

        rows = [(i % 20, i % 7) for i in range(200)]
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], rows
        )
        fd = FunctionalDependency("a", "b", name="f")
        state = TableState(relation=rel)
        state.add_rule(fd)

        answer1 = {r.tid for r in rel.where("a", "<", 5)}
        before = state.counter.tuples_scanned
        clean_sigma(state, answer1, where_attrs=["a"], projection=["b"])
        first_scans = state.counter.tuples_scanned - before

        answer2 = {r.tid for r in state.relation.where("a", ">=", 5)}
        before = state.counter.tuples_scanned
        clean_sigma(state, answer2, where_attrs=["a"], projection=["b"])
        second_scans = state.counter.tuples_scanned - before
        assert second_scans < first_scans

    def test_incremental_result_matches_offline(self):
        """Splitting the workload must not change the final repairs."""
        from repro.baselines import OfflineCleaner

        rows = [(i % 10, (i * 3) % 4) for i in range(80)]
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], rows, name="t"
        )
        fd = FunctionalDependency("a", "b", name="f")

        daisy = Daisy(use_cost_model=False)
        daisy.register_table("t", Relation(rel.schema, list(rel.rows), name="t"))
        daisy.add_rule("t", fd)
        daisy.execute("SELECT b FROM t WHERE a < 5")
        daisy.execute("SELECT b FROM t WHERE a >= 5")
        incremental = daisy.table("t")

        offline_rel, _ = OfflineCleaner().clean(
            Relation(rel.schema, list(rel.rows), name="t"), [fd]
        )
        for tid in range(80):
            a = incremental.row_by_tid(tid).values[1]
            b = offline_rel.row_by_tid(tid).values[1]
            a_vals = set(a.concrete_values()) if isinstance(a, PValue) else {a}
            b_vals = set(b.concrete_values()) if isinstance(b, PValue) else {b}
            assert a_vals == b_vals, f"tid {tid}: {a_vals} != {b_vals}"
