"""Sharded parallel execution: pool/shard units and serial-parity suites.

The contract under test: every parallel path — theta-join cell fan-out,
shard-routed FD relaxation, the batch API's shard-partitioned shared pass —
is **byte-identical** to the serial oracle: same violations (as ordered
lists), same repairs and repaired relations (PValue candidates included),
and the same work-unit totals after merging per-worker counters.
"""

from __future__ import annotations

import pytest

from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.datasets import airquality, hospital
from repro.datasets.errors import inject_numeric_errors
from repro.parallel import (
    ForkProcessPool,
    ParallelContext,
    SerialPool,
    ShardSet,
    ThreadPool,
    fork_available,
    make_pool,
)
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.relation import ColumnType, Relation


# ---------------------------------------------------------------------------
# Executor pools
# ---------------------------------------------------------------------------


class TestExecutorPool:
    def test_make_pool_single_worker_is_serial(self):
        assert isinstance(make_pool("thread", 1), SerialPool)
        assert isinstance(make_pool("process", 1), SerialPool)
        assert isinstance(make_pool("serial", 8), SerialPool)

    def test_make_pool_kinds(self):
        with make_pool("thread", 3) as pool:
            assert isinstance(pool, ThreadPool)
            assert pool.workers == 3
        with pytest.raises(ValueError):
            make_pool("fleet", 2)

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_results_in_task_order(self, kind):
        if kind == "process" and not fork_available():
            pytest.skip("no fork on this platform")
        tasks = [(lambda k=k: k * k) for k in range(13)]
        with make_pool(kind, 4) as pool:
            assert pool.run(tasks) == [k * k for k in range(13)]

    def test_thread_pool_propagates_exceptions(self):
        def boom():
            raise RuntimeError("task failed")

        with make_pool("thread", 2) as pool:
            with pytest.raises(RuntimeError, match="task failed"):
                pool.run([lambda: 1, boom, lambda: 3])

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_fork_pool_inherits_closures(self):
        payload = {"base": 40}
        with ForkProcessPool(2) as pool:
            got = pool.run([lambda: payload["base"] + 1, lambda: payload["base"] + 2])
        assert got == [41, 42]

    def test_close_is_idempotent(self):
        pool = make_pool("thread", 2)
        pool.run([lambda: 1, lambda: 2])
        pool.close()
        pool.close()


# ---------------------------------------------------------------------------
# Relation shards
# ---------------------------------------------------------------------------


def _numbers_relation(n: int = 20) -> Relation:
    return Relation.from_rows(
        [("k", ColumnType.INT), ("v", ColumnType.INT)],
        [(i, i % 5) for i in range(n)],
        name="numbers",
    )


class TestShardSet:
    def test_split_covers_all_rows_contiguously(self):
        rel = _numbers_relation(20)
        shards = ShardSet.split(rel, 4)
        assert len(shards) == 4
        assert [len(s) for s in shards] == [5, 5, 5, 5]
        seen: list[int] = []
        for shard in shards:
            assert shard.tid_lo == min(shard.tids)
            assert shard.tid_hi == max(shard.tids)
            seen.extend(sorted(shard.tids))
        assert seen == list(range(20))

    def test_more_shards_than_rows(self):
        shards = ShardSet.split(_numbers_relation(3), 8)
        assert len(shards) == 3
        assert all(len(s) == 1 for s in shards)

    def test_empty_relation(self):
        rel = Relation.from_rows([("k", ColumnType.INT)], [], name="empty")
        shards = ShardSet.split(rel, 4)
        assert len(shards) == 1
        assert shards.route_tids([1, 2]) == {}

    def test_router(self):
        shards = ShardSet.split(_numbers_relation(20), 4)
        routed = shards.route_tids([0, 4, 5, 19, 99])
        assert routed == {0: {0, 4}, 1: {5}, 3: {19}}
        assert shards.shard_of_tid(7) == 1
        assert shards.shard_of_tid(99) is None

    def test_shard_filter_union_matches_full_filter(self):
        rel = _numbers_relation(23)
        shards = ShardSet.split(rel, 4)
        expected = rel.column_view().filter_tids("v", "=", 3)
        assert shards.filter_tids("v", "=", 3) == expected
        expected_range = rel.column_view().filter_tids("k", ">=", 11)
        assert shards.filter_tids("k", ">=", 11) == expected_range

    def test_shard_views_are_lazy_and_cached(self):
        shard = ShardSet.split(_numbers_relation(10), 2).shards[0]
        assert shard._view is None
        view = shard.view()
        assert view is shard.view()
        assert len(view) == len(shard)


# ---------------------------------------------------------------------------
# Theta-join cell fan-out
# ---------------------------------------------------------------------------


def _dc_relation(n: int = 240) -> tuple[Relation, DenialConstraint]:
    raw = [(i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6)) for i in range(n)]
    rel = Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("extended_price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        raw,
        name="lineorder",
    )
    dirty, _ = inject_numeric_errors(
        rel, "discount", cell_fraction=0.05, magnitude=3.0, seed=7
    )
    dc = DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )
    return dirty, dc


class TestMatrixFanOut:
    @pytest.mark.parametrize("backend", ["columnar", "rowstore"])
    def test_check_full_parallel_identical(self, backend):
        rel, dc = _dc_relation()
        serial = ThetaJoinMatrix(rel, dc, sqrt_p=6, counter=WorkCounter(), backend=backend)
        fanned = ThetaJoinMatrix(rel, dc, sqrt_p=6, counter=WorkCounter(), backend=backend)
        expected = serial.check_full()
        with make_pool("thread", 4) as pool:
            got = fanned.check_full(pool=pool)
        # List equality, not set equality: per-cell canonical order plus
        # cell-order merging makes the violation order deterministic.
        assert got == expected
        assert fanned.counter.as_dict() == serial.counter.as_dict()
        assert fanned.checked_cells == serial.checked_cells

    def test_check_partial_parallel_identical(self):
        rel, dc = _dc_relation()
        serial = ThetaJoinMatrix(rel, dc, sqrt_p=6, counter=WorkCounter())
        fanned = ThetaJoinMatrix(rel, dc, sqrt_p=6, counter=WorkCounter())
        tids = set(range(0, 60))
        expected_first = serial.check_partial(tids)
        with make_pool("thread", 3) as pool:
            got_first = fanned.check_partial(tids, pool=pool)
            assert got_first == expected_first
            # Incremental second call: already-checked cells stay skipped.
            more = set(range(60, 150))
            assert fanned.check_partial(more, pool=pool) == serial.check_partial(more)
        assert fanned.counter.as_dict() == serial.counter.as_dict()

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_check_full_process_pool_identical(self):
        rel, dc = _dc_relation(160)
        serial = ThetaJoinMatrix(rel, dc, sqrt_p=4, counter=WorkCounter())
        fanned = ThetaJoinMatrix(rel, dc, sqrt_p=4, counter=WorkCounter())
        expected = serial.check_full()
        with make_pool("process", 2) as pool:
            got = fanned.check_full(pool=pool)
        assert got == expected
        assert fanned.counter.as_dict() == serial.counter.as_dict()

    def test_per_worker_counters_reconcile_with_serial(self):
        """Per-cell WorkCounters merged via WorkCounter.merged == serial ±0."""
        rel, dc = _dc_relation(200)
        serial = ThetaJoinMatrix(rel, dc, sqrt_p=5, counter=WorkCounter())
        serial.check_full()
        fanned = ThetaJoinMatrix(rel, dc, sqrt_p=5, counter=WorkCounter())
        per_cell = []
        for i, j in fanned.candidate_cells():
            local = WorkCounter()
            fanned._check_cell(i, j, counter=local)
            per_cell.append(local)
        merged = WorkCounter.merged(per_cell)
        assert merged.as_dict() == serial.counter.as_dict()
        assert merged.total() == serial.counter.total()

    def test_serial_order_is_canonical(self):
        """The serial path itself returns the canonical (cell, t1, t2) order."""
        rel, dc = _dc_relation(120)
        matrix = ThetaJoinMatrix(rel, dc, sqrt_p=4, counter=WorkCounter())
        cells = matrix.candidate_cells()
        per_cell = [matrix._check_cell(i, j) for i, j in cells]
        for violations in per_cell:
            assert violations == sorted(violations, key=lambda v: (v.t1, v.t2))
        flat = [v for chunk in per_cell for v in chunk]
        matrix2 = ThetaJoinMatrix(rel, dc, sqrt_p=4, counter=WorkCounter())
        assert matrix2.check_full() == flat


# ---------------------------------------------------------------------------
# End-to-end parity: serial vs threaded vs sharded sessions
# ---------------------------------------------------------------------------


def _relation_fingerprint(rel: Relation) -> list[tuple]:
    """Rows with exact cells (PValue candidates included, via __eq__/repr)."""
    return [(row.tid, tuple(repr(c) for c in row.values)) for row in rel.rows]


def _run_workload(make_daisy, table: str, queries, batch: bool = False):
    daisy = make_daisy()
    with daisy.connect() as session:
        if batch:
            batch_result = session.execute_batch(list(queries))
            rows = [r.relation.to_plain_rows() for r in batch_result.results]
        else:
            rows = [session.execute(q).relation.to_plain_rows() for q in queries]
        log = [(e.errors_fixed, e.extra_tuples, e.result_size) for e in session.query_log]
    return {
        "rows": rows,
        "log": log,
        "relation": _relation_fingerprint(daisy.table(table)),
        "work": daisy.work_counter(table).as_dict(),
        "pcells": daisy.probabilistic_cells(table),
    }


def _hospital_queries() -> list[str]:
    zips = [10000, 10400, 10800, 11200, 11600]
    out = []
    for lo, hi in zip(zips, zips[1:]):
        out.append(
            f"SELECT city, zip FROM hospital WHERE zip >= {lo} AND zip < {hi}"
        )
    out.append("SELECT hospital_name, zip FROM hospital WHERE city = 'city_3'")
    return out


def _hospital_daisy(**config_kwargs):
    instance = hospital.generate_instance(num_rows=400, seed=11)

    def make() -> Daisy:
        daisy = Daisy(config=DaisyConfig(use_cost_model=False, **config_kwargs))
        # Re-generate per engine: cleaning mutates the relation in place.
        fresh = hospital.generate_instance(num_rows=400, seed=11)
        daisy.register_table("hospital", fresh.dirty)
        for fd in fresh.rules:
            daisy.add_rule("hospital", fd)
        return daisy

    assert len(instance.dirty) == 400
    return make


class TestSessionParity:
    def test_hospital_sharded_threaded_byte_identical(self):
        queries = _hospital_queries()
        serial = _run_workload(_hospital_daisy(), "hospital", queries)
        threaded = _run_workload(
            _hospital_daisy(parallelism=2, pool="thread"), "hospital", queries
        )
        sharded = _run_workload(
            _hospital_daisy(parallelism=2, pool="thread", num_shards=4),
            "hospital",
            queries,
        )
        for parallel in (threaded, sharded):
            assert parallel["rows"] == serial["rows"]
            assert parallel["relation"] == serial["relation"]
            assert parallel["work"] == serial["work"]
            assert parallel["log"] == serial["log"]
            assert parallel["pcells"] == serial["pcells"]

    def test_airquality_batch_sharded_byte_identical(self):
        num_states = 8

        def make(**config_kwargs):
            def build() -> Daisy:
                daisy = Daisy(
                    config=DaisyConfig(use_cost_model=False, **config_kwargs)
                )
                fresh = airquality.generate_instance(
                    num_rows=900, num_states=num_states, violation_level="low",
                    seed=17,
                )
                daisy.register_table("airquality", fresh.dirty)
                daisy.add_rule("airquality", fresh.fd)
                return daisy

            return build

        queries = airquality.state_co_queries(num_states)
        serial = _run_workload(make(), "airquality", queries, batch=True)
        sharded = _run_workload(
            make(parallelism=2, pool="thread", num_shards=3),
            "airquality",
            queries,
            batch=True,
        )
        assert sharded["rows"] == serial["rows"]
        assert sharded["relation"] == serial["relation"]
        assert sharded["work"] == serial["work"]
        assert sharded["pcells"] == serial["pcells"]

    def test_dc_workload_sharded_byte_identical(self):
        def make(**config_kwargs):
            def build() -> Daisy:
                rel, dc = _dc_relation(200)
                daisy = Daisy(
                    config=DaisyConfig(use_cost_model=False, **config_kwargs)
                )
                daisy.register_table("lineorder", rel)
                daisy.add_rule("lineorder", dc)
                return daisy

            return build

        queries = [
            f"SELECT orderkey, discount FROM lineorder WHERE extended_price < {hi}"
            for hi in (400.0, 900.0, 1600.0, 2600.0)
        ]
        serial = _run_workload(make(), "lineorder", queries)
        fanned = _run_workload(
            make(parallelism=4, pool="thread"), "lineorder", queries
        )
        assert fanned["rows"] == serial["rows"]
        assert fanned["relation"] == serial["relation"]
        assert fanned["work"] == serial["work"]
        assert fanned["log"] == serial["log"]

    def test_session_close_releases_pool(self):
        daisy = _hospital_daisy(parallelism=2, pool="thread")()
        session = daisy.connect()
        context = session.parallel
        assert context is not None
        session.execute(_hospital_queries()[0])
        session.close()
        assert context._pool is None
        assert session.closed

    def test_serial_session_has_no_context(self):
        daisy = _hospital_daisy()()
        with daisy.connect() as session:
            assert session.parallel is None


class TestParallelContext:
    def test_shard_router_cached_per_state(self):
        daisy = _hospital_daisy()()
        state = daisy.states["hospital"]
        context = ParallelContext("thread", 2, num_shards=3)
        try:
            first = context.shards_for(state)
            assert context.shards_for(state) is first
            assert len(first) == 3
        finally:
            context.close()

    def test_reregistered_table_gets_fresh_router(self):
        """A new TableState must never alias a stale cached ShardSet."""
        daisy = _hospital_daisy()()
        context = ParallelContext("thread", 2, num_shards=3)
        try:
            old_router = context.shards_for(daisy.states["hospital"])
            daisy.register_table("hospital", _numbers_relation(12))
            new_state = daisy.states["hospital"]
            new_router = context.shards_for(new_state)
            assert new_router is not old_router
            assert new_router.route_tids(range(12)).keys() == {0, 1, 2}
        finally:
            context.close()

    def test_defaults_shards_to_workers(self):
        context = ParallelContext("serial", 4)
        assert context.num_shards == 4
        context.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelContext("bogus", 2)
        with pytest.raises(ValueError):
            ParallelContext("thread", 0)
        with pytest.raises(ValueError):
            DaisyConfig(parallelism=0)
        with pytest.raises(ValueError):
            DaisyConfig(pool="bogus")
