"""Tests for the cleaning-aware planner (Section 5.1 injection rules)."""

import pytest

from repro.constraints import FunctionalDependency
from repro.errors import PlanError
from repro.query import (
    CleanJoinNode,
    CleanSigmaNode,
    FilterNode,
    GroupByNode,
    PlannerCatalog,
    ProjectNode,
    ScanNode,
    build_plan,
    collect_nodes,
    parse_sql,
    plan_contains,
)
from repro.relation.schema import ColumnType, Schema


@pytest.fixture
def catalog():
    cat = PlannerCatalog()
    cat.add_table(
        "lineorder",
        Schema(
            [
                ("orderkey", ColumnType.INT),
                ("suppkey", ColumnType.INT),
                ("revenue", ColumnType.FLOAT),
            ]
        ),
    )
    cat.add_table(
        "supplier",
        Schema([("suppkey", ColumnType.INT), ("address", ColumnType.STRING)]),
    )
    cat.add_rule("lineorder", FunctionalDependency("orderkey", "suppkey", name="phi"))
    cat.add_rule("supplier", FunctionalDependency("address", "suppkey", name="psi"))
    return cat


class TestCleanSigmaInjection:
    def test_injected_when_filter_overlaps_rule(self, catalog):
        plan = build_plan(
            parse_sql("SELECT revenue FROM lineorder WHERE orderkey = 5"), catalog
        )
        assert plan_contains(plan, CleanSigmaNode)

    def test_injected_when_projection_overlaps_rule(self, catalog):
        plan = build_plan(
            parse_sql("SELECT suppkey FROM lineorder WHERE revenue > 100"), catalog
        )
        assert plan_contains(plan, CleanSigmaNode)

    def test_not_injected_without_overlap(self, catalog):
        plan = build_plan(
            parse_sql("SELECT revenue FROM lineorder WHERE revenue > 100"), catalog
        )
        assert not plan_contains(plan, CleanSigmaNode)

    def test_sits_above_filter(self, catalog):
        plan = build_plan(
            parse_sql("SELECT suppkey FROM lineorder WHERE orderkey = 5"), catalog
        )
        nodes = collect_nodes(plan, CleanSigmaNode)
        assert isinstance(nodes[0].child, FilterNode)

    def test_above_bare_scan_without_filter(self, catalog):
        plan = build_plan(parse_sql("SELECT suppkey FROM lineorder"), catalog)
        nodes = collect_nodes(plan, CleanSigmaNode)
        assert isinstance(nodes[0].child, ScanNode)


class TestCleanJoinInjection:
    def test_injected_on_rule_join_key(self, catalog):
        plan = build_plan(
            parse_sql(
                "SELECT lineorder.orderkey FROM lineorder, supplier "
                "WHERE lineorder.suppkey = supplier.suppkey"
            ),
            catalog,
        )
        assert plan_contains(plan, CleanJoinNode)
        node = collect_nodes(plan, CleanJoinNode)[0]
        assert [r.name for r in node.left_rules] == ["phi"]
        assert [r.name for r in node.right_rules] == ["psi"]

    def test_not_injected_on_clean_join_key(self):
        cat = PlannerCatalog()
        cat.add_table("a", Schema([("k", ColumnType.INT), ("x", ColumnType.INT)]))
        cat.add_table("b", Schema([("k", ColumnType.INT), ("y", ColumnType.INT)]))
        cat.add_rule("a", FunctionalDependency("x", "k", name="r"))
        plan = build_plan(
            parse_sql("SELECT a.x FROM a, b WHERE a.k = b.k"), cat
        )
        # the join key k participates in rule r (rhs) — injected
        assert plan_contains(plan, CleanJoinNode)
        cat2 = PlannerCatalog()
        cat2.add_table("a", Schema([("k", ColumnType.INT), ("x", ColumnType.INT)]))
        cat2.add_table("b", Schema([("k", ColumnType.INT), ("y", ColumnType.INT)]))
        plan2 = build_plan(
            parse_sql("SELECT a.x FROM a, b WHERE a.k = b.k"), cat2
        )
        assert not plan_contains(plan2, CleanJoinNode)

    def test_group_by_sits_above_cleaning(self, catalog):
        plan = build_plan(
            parse_sql(
                "SELECT lineorder.orderkey, SUM(lineorder.revenue) AS r "
                "FROM lineorder, supplier "
                "WHERE lineorder.suppkey = supplier.suppkey "
                "GROUP BY lineorder.orderkey"
            ),
            catalog,
        )
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, GroupByNode)
        assert plan_contains(plan.child, CleanJoinNode)


class TestResolution:
    def test_unqualified_column_resolved(self, catalog):
        plan = build_plan(
            parse_sql("SELECT revenue FROM lineorder WHERE orderkey = 1"), catalog
        )
        assert plan_contains(plan, FilterNode)

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(PlanError, match="ambiguous"):
            build_plan(
                parse_sql(
                    "SELECT suppkey FROM lineorder, supplier "
                    "WHERE lineorder.suppkey = supplier.suppkey"
                ),
                catalog,
            )

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(PlanError):
            build_plan(parse_sql("SELECT a FROM nope"), catalog)

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(PlanError):
            build_plan(parse_sql("SELECT zzz FROM lineorder"), catalog)

    def test_disconnected_join_rejected(self, catalog):
        cat = PlannerCatalog()
        for name in ("a", "b", "c"):
            cat.add_table(name, Schema([(f"{name}k", ColumnType.INT)]))
        with pytest.raises(PlanError, match="disconnected"):
            build_plan(
                parse_sql(
                    "SELECT a.ak FROM a, b, c WHERE a.ak = b.bk AND a.ak = b.bk"
                ),
                cat,
            )

    def test_pretty_output(self, catalog):
        plan = build_plan(
            parse_sql("SELECT suppkey FROM lineorder WHERE orderkey = 1"), catalog
        )
        text = plan.pretty()
        assert "CleanSigma" in text and "Scan(lineorder)" in text
