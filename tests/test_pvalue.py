"""Unit + property tests for the probabilistic value model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProbabilisticValueError
from repro.probabilistic import (
    Candidate,
    PValue,
    ValueRange,
    cell_compare,
    cells_may_equal,
    plain,
)


class TestCandidate:
    def test_bad_probability_rejected(self):
        with pytest.raises(ProbabilisticValueError):
            Candidate("x", 1.5)

    def test_matches_value(self):
        assert Candidate("x", 0.5).matches("x")
        assert not Candidate("x", 0.5).matches("y")

    def test_matches_range(self):
        c = Candidate(ValueRange(low=10.0), 0.5)
        assert c.matches(11)
        assert not c.matches(10)  # low is open by default


class TestValueRange:
    def test_contains_open_closed(self):
        r = ValueRange(low=1.0, high=2.0, low_open=False, high_open=True)
        assert r.contains(1.0)
        assert r.contains(1.5)
        assert not r.contains(2.0)

    def test_unbounded(self):
        assert ValueRange(low=5.0).contains(1e9)
        assert ValueRange(high=5.0).contains(-1e9)

    def test_empty_range_rejected(self):
        with pytest.raises(ProbabilisticValueError):
            ValueRange(low=2.0, high=1.0)

    def test_overlaps(self):
        assert ValueRange(low=1.0, high=3.0).overlaps(ValueRange(low=2.0, high=4.0))
        assert not ValueRange(high=1.0).overlaps(ValueRange(low=2.0))

    def test_touching_open_bounds_do_not_overlap(self):
        a = ValueRange(low=0.0, high=1.0, high_open=True)
        b = ValueRange(low=1.0, high=2.0, low_open=True)
        assert not a.overlaps(b)

    def test_midpoint(self):
        assert ValueRange(low=1.0, high=3.0).midpoint() == 2.0
        assert ValueRange(low=5.0).midpoint() == 6.0

    def test_contains_rejects_non_numeric(self):
        assert not ValueRange(low=0.0).contains("abc")

    def test_str(self):
        assert str(ValueRange(low=1.0, high=2.0)) == "(1,2)"


class TestPValue:
    def test_requires_candidates(self):
        with pytest.raises(ProbabilisticValueError):
            PValue([])

    def test_normalizes_probabilities(self):
        pv = PValue([Candidate("a", 0.5), Candidate("b", 0.25)])
        assert math.isclose(sum(c.prob for c in pv.candidates), 1.0)

    def test_merges_same_value_same_world(self):
        pv = PValue([Candidate("a", 0.3), Candidate("a", 0.3), Candidate("b", 0.4)])
        assert len(pv) == 2
        assert math.isclose(pv.probability_of("a"), 0.6)

    def test_same_value_different_world_not_merged(self):
        pv = PValue([Candidate("a", 0.5, world=1), Candidate("a", 0.5, world=2)])
        assert len(pv) == 2

    def test_most_probable_deterministic_tiebreak(self):
        pv = PValue([Candidate("b", 0.5), Candidate("a", 0.5)])
        assert pv.most_probable() == "a"  # sorted by value string on tie

    def test_from_frequencies(self):
        pv = PValue.from_frequencies({"x": 2, "y": 1})
        assert math.isclose(pv.probability_of("x"), 2 / 3)

    def test_certain(self):
        pv = PValue.certain(5)
        assert pv.is_certain()
        assert pv.most_probable() == 5

    def test_matches(self):
        pv = PValue([Candidate(1, 0.9), Candidate(2, 0.1)])
        assert pv.matches(2)
        assert not pv.matches(3)

    def test_compare_inequality(self):
        pv = PValue([Candidate(1, 0.5), Candidate(10, 0.5)])
        assert pv.compare("<", 5)
        assert pv.compare(">", 5)
        assert not pv.compare(">", 100)

    def test_compare_with_range_candidate(self):
        pv = PValue([Candidate(ValueRange(low=100.0), 1.0)])
        assert pv.compare(">", 50)
        assert not pv.compare("<", 100)

    def test_worlds(self):
        pv = PValue([Candidate("a", 0.5, world=2), Candidate("b", 0.5, world=1)])
        assert pv.worlds() == (1, 2)

    def test_overlap_values(self):
        a = PValue([Candidate(1, 0.5), Candidate(2, 0.5)])
        b = PValue([Candidate(2, 0.5), Candidate(3, 0.5)])
        assert a.overlap_values(b) == {2}


class TestCellHelpers:
    def test_plain_concrete(self):
        assert plain(5) == 5

    def test_plain_pvalue(self):
        assert plain(PValue([Candidate("a", 0.9), Candidate("b", 0.1)])) == "a"

    def test_plain_range_midpoint(self):
        pv = PValue([Candidate(ValueRange(low=1.0, high=3.0), 1.0)])
        assert plain(pv) == 2.0

    def test_cells_may_equal_concrete(self):
        assert cells_may_equal(1, 1)
        assert not cells_may_equal(1, 2)

    def test_cells_may_equal_pvalue_concrete(self):
        pv = PValue([Candidate(1, 0.5), Candidate(2, 0.5)])
        assert cells_may_equal(pv, 2)
        assert cells_may_equal(2, pv)

    def test_cells_may_equal_two_pvalues(self):
        a = PValue([Candidate(1, 0.5), Candidate(2, 0.5)])
        b = PValue([Candidate(2, 0.5), Candidate(3, 0.5)])
        assert cells_may_equal(a, b)

    def test_cells_may_equal_range_bridges(self):
        a = PValue([Candidate(ValueRange(low=0.0, high=10.0), 1.0)])
        assert cells_may_equal(a, PValue([Candidate(5, 1.0)]))

    def test_cell_compare_null_safe(self):
        assert not cell_compare(None, "=", 1)
        assert not cell_compare(1, "<", None)

    def test_cell_compare_mixed_types_safe(self):
        assert not cell_compare("abc", "<", 1)

    def test_cell_compare_flip(self):
        pv = PValue([Candidate(10, 1.0)])
        assert cell_compare(5, "<", pv)
        assert not cell_compare(5, ">", pv)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

values = st.one_of(st.integers(-100, 100), st.text(max_size=4))
weights = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


@given(st.lists(st.tuples(values, weights), min_size=1, max_size=6))
def test_pvalue_probabilities_always_sum_to_one(pairs):
    pv = PValue([Candidate(v, p) for v, p in pairs])
    assert math.isclose(sum(c.prob for c in pv.candidates), 1.0, abs_tol=1e-9)


@given(st.lists(st.tuples(values, weights), min_size=1, max_size=6))
def test_pvalue_most_probable_is_a_candidate(pairs):
    pv = PValue([Candidate(v, p) for v, p in pairs])
    assert pv.most_probable() in pv.values()


@given(st.dictionaries(values, st.integers(1, 50), min_size=1, max_size=6))
def test_from_frequencies_preserves_ratios(counts):
    pv = PValue.from_frequencies(counts)
    total = sum(counts.values())
    for value, count in counts.items():
        assert math.isclose(pv.probability_of(value), count / total, abs_tol=1e-9)


@given(
    st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    st.floats(min_value=0.1, max_value=100, allow_nan=False),
    st.floats(min_value=-1000, max_value=1000, allow_nan=False),
)
def test_range_contains_iff_between_bounds(low, width, probe):
    r = ValueRange(low=low, high=low + width)
    assert r.contains(probe) == (low < probe < low + width)


@given(st.lists(st.tuples(values, weights), min_size=1, max_size=5), values)
def test_matches_agrees_with_candidate_scan(pairs, probe):
    pv = PValue([Candidate(v, p) for v, p in pairs])
    assert pv.matches(probe) == any(c.matches(probe) for c in pv.candidates)
