"""Unit tests for repro.relation.relation (Relation / Row operators)."""

import pytest

from repro.errors import SchemaError
from repro.probabilistic import Candidate, PValue
from repro.relation import ColumnType, Relation
from repro.relation.relation import Row


@pytest.fixture
def rel():
    return Relation.from_rows(
        [("k", ColumnType.INT), ("v", ColumnType.STRING)],
        [(1, "a"), (2, "b"), (2, "c"), (3, "a")],
        name="t",
    )


class TestConstruction:
    def test_fresh_tids(self, rel):
        assert [r.tid for r in rel] == [0, 1, 2, 3]

    def test_validation_catches_bad_row(self):
        with pytest.raises(Exception):
            Relation.from_rows([("k", ColumnType.INT)], [("oops",)])

    def test_empty_like(self, rel):
        empty = rel.empty_like()
        assert len(empty) == 0
        assert empty.schema == rel.schema


class TestSelection:
    def test_where_equality(self, rel):
        assert {r.tid for r in rel.where("k", "=", 2)} == {1, 2}

    def test_where_range(self, rel):
        assert {r.tid for r in rel.where("k", ">=", 2)} == {1, 2, 3}

    def test_where_probabilistic_candidate_matches(self, rel):
        pv = PValue([Candidate(1, 0.5), Candidate(9, 0.5)])
        rel2 = rel.update_cells({(3, "k"): pv})
        # tid 3 qualifies k=9 through its candidate
        assert {r.tid for r in rel2.where("k", "=", 9)} == {3}

    def test_filter_callable(self, rel):
        assert len(rel.filter(lambda r: r.values[1] == "a")) == 2


class TestProjectRename:
    def test_project_keeps_tids(self, rel):
        proj = rel.project(["v"])
        assert [r.tid for r in proj] == [0, 1, 2, 3]
        assert proj.schema.names == ("v",)

    def test_rename(self, rel):
        assert rel.rename({"k": "key"}).schema.names == ("key", "v")

    def test_prefixed(self, rel):
        assert rel.prefixed("x").schema.names == ("x.k", "x.v")


class TestSetOps:
    def test_union(self, rel):
        assert len(rel.union(rel)) == 8

    def test_union_schema_mismatch(self, rel):
        other = Relation.from_rows([("z", ColumnType.INT)], [(1,)])
        with pytest.raises(SchemaError):
            rel.union(other)

    def test_restrict_and_minus(self, rel):
        assert rel.restrict_tids({0, 2}).tids() == {0, 2}
        assert rel.minus_tids({0, 2}).tids() == {1, 3}


class TestJoin:
    def test_equi_join_basic(self, rel):
        other = Relation.from_rows(
            [("k", ColumnType.INT), ("w", ColumnType.STRING)], [(2, "x"), (4, "y")]
        )
        out = rel.equi_join(other, "k", "k", "l", "r")
        assert len(out) == 2  # tids 1 and 2 match k=2
        assert out.schema.names == ("l.k", "l.v", "r.k", "r.w")

    def test_join_probabilistic_key_overlap(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,)])
        pv = PValue([Candidate(1, 0.5), Candidate(2, 0.5)])
        right = Relation.from_rows([("k", ColumnType.INT)], [(7,)])
        right = right.update_cells({(0, "k"): pv})
        out = left.equi_join(right, "k", "k", "l", "r")
        assert len(out) == 1

    def test_join_no_duplicate_pairs(self):
        # A PValue with two candidates both matching must produce one pair.
        pv = PValue([Candidate(1, 0.5), Candidate(1, 0.5, world=1)])
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,)])
        right = Relation.from_rows([("k", ColumnType.INT)], [(1,)])
        right = right.update_cells({(0, "k"): pv})
        out = left.equi_join(right, "k", "k", "l", "r")
        assert len(out) == 1


class TestGroupBy:
    def test_count(self, rel):
        out = rel.group_by(["k"], [("count", "*", "n")])
        mapping = {row.values[0]: row.values[1] for row in out}
        assert mapping == {1: 1, 2: 2, 3: 1}

    def test_sum_avg_min_max(self):
        r = Relation.from_rows(
            [("g", ColumnType.INT), ("x", ColumnType.FLOAT)],
            [(1, 2.0), (1, 4.0), (2, 10.0)],
        )
        out = r.group_by(
            ["g"],
            [("sum", "x", "s"), ("avg", "x", "a"), ("min", "x", "lo"), ("max", "x", "hi")],
        )
        by_g = {row.values[0]: row.values[1:] for row in out}
        assert by_g[1] == (6.0, 3.0, 2.0, 4.0)
        assert by_g[2] == (10.0, 10.0, 10.0, 10.0)

    def test_group_by_probabilistic_key_uses_most_probable(self):
        pv = PValue([Candidate(1, 0.9), Candidate(2, 0.1)])
        r = Relation.from_rows([("g", ColumnType.INT)], [(1,), (2,)])
        r = r.update_cells({(1, "g"): pv})
        out = r.group_by(["g"], [("count", "*", "n")])
        mapping = {row.values[0]: row.values[1] for row in out}
        assert mapping == {1: 2}

    def test_unknown_aggregate_rejected(self, rel):
        with pytest.raises(SchemaError):
            rel.group_by(["k"], [("median", "k", "m")])


class TestUpdates:
    def test_apply_delta_replaces_by_tid(self, rel):
        new_row = Row(1, (99, "z"))
        out = rel.apply_delta({1: new_row})
        assert out.tid_index()[1].values == (99, "z")
        assert out.tid_index()[0].values == (1, "a")

    def test_update_cells(self, rel):
        out = rel.update_cells({(0, "v"): "Z", (3, "k"): 42})
        assert out.tid_index()[0].values == (1, "Z")
        assert out.tid_index()[3].values == (42, "a")

    def test_update_cells_empty_is_identity(self, rel):
        assert rel.update_cells({}) is rel

    def test_probabilistic_cell_count(self, rel):
        pv = PValue([Candidate("a", 0.5), Candidate("b", 0.5)])
        out = rel.update_cells({(0, "v"): pv})
        assert out.probabilistic_cell_count() == 1

    def test_to_plain_rows_collapses(self, rel):
        pv = PValue([Candidate("zz", 0.9), Candidate("b", 0.1)])
        out = rel.update_cells({(0, "v"): pv})
        assert out.to_plain_rows()[0] == (1, "zz")


class TestTidAccess:
    def test_row_by_tid(self, rel):
        assert rel.row_by_tid(2).values == (2, "c")

    def test_row_by_tid_missing(self, rel):
        with pytest.raises(KeyError):
            rel.row_by_tid(99)

    def test_distinct_values_includes_candidates(self, rel):
        pv = PValue([Candidate(7, 0.5), Candidate(8, 0.5)])
        out = rel.update_cells({(0, "k"): pv})
        assert out.distinct_values("k") == {2, 3, 7, 8}
