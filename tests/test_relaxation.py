"""Tests for Algorithm 1 (query-result relaxation) and Lemmas 1-3."""

import math

from hypothesis import given, settings, strategies as st

from repro.constraints import FilterSide, FunctionalDependency
from repro.core.relaxation import (
    estimate_relaxed_size,
    extra_iteration_probability,
    frequency_distribution,
    iterations_needed_rhs_filter,
    relax_fd,
    relaxed_size_upper_bound,
)
from repro.engine import WorkCounter
from repro.relation import ColumnType, Relation


class TestRhsFilterRelaxation:
    """Lemma 1 / Example 2 behaviour."""

    def test_single_iteration(self, cities_relation, zip_city_fd):
        answer = {0, 2}  # city = Los Angeles
        result = relax_fd(cities_relation, answer, zip_city_fd, FilterSide.RHS)
        assert result.iterations == 1

    def test_extra_is_same_lhs_tuples(self, cities_relation, zip_city_fd):
        result = relax_fd(cities_relation, {0, 2}, zip_city_fd, FilterSide.RHS)
        assert result.extra_tids == {1}  # (9001, San Francisco)

    def test_consult_is_same_rhs_tuples(self, cities_relation, zip_city_fd):
        result = relax_fd(cities_relation, {0, 2}, zip_city_fd, FilterSide.RHS)
        # (10001, San Francisco) shares SF with the extended scope
        assert result.consult_tids == {3}

    def test_clean_answer_adds_nothing_new(self, zip_city_fd):
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "A"), (2, "B")],
        )
        result = relax_fd(rel, {0}, zip_city_fd, FilterSide.RHS)
        assert result.extra_tids == set()


class TestLhsFilterRelaxation:
    """Lemma 2 / Example 3 behaviour (transitive closure)."""

    def test_closure_pulls_whole_cluster(self, cities_relation, zip_city_fd):
        result = relax_fd(cities_relation, {0, 1, 2}, zip_city_fd, FilterSide.LHS)
        assert result.extra_tids == {3, 4}

    def test_multiple_iterations_needed(self, cities_relation, zip_city_fd):
        result = relax_fd(cities_relation, {0, 1, 2}, zip_city_fd, FilterSide.LHS)
        assert result.iterations >= 2

    def test_max_iterations_caps(self, cities_relation, zip_city_fd):
        result = relax_fd(
            cities_relation, {0, 1, 2}, zip_city_fd, FilterSide.LHS, max_iterations=1
        )
        assert result.iterations == 1
        assert result.extra_tids == {3}  # only the first hop

    def test_disconnected_component_not_pulled(self, zip_city_fd):
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "A"), (1, "B"), (2, "C"), (2, "D")],
        )
        result = relax_fd(rel, {0, 1}, zip_city_fd, FilterSide.LHS)
        assert result.extra_tids == set()

    def test_closure_equals_connected_component(self, zip_city_fd):
        # Chain: (1,A) (1,B) (2,B) (2,C) (3,C) — one connected component via
        # shared values; query on zip=1 must pull everything.
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
            [(1, "A"), (1, "B"), (2, "B"), (2, "C"), (3, "C")],
        )
        result = relax_fd(rel, {0, 1}, zip_city_fd, FilterSide.LHS)
        assert result.relaxed_tids({0, 1}) == {0, 1, 2, 3, 4}

    def test_work_charged(self, cities_relation, zip_city_fd):
        wc = WorkCounter()
        relax_fd(cities_relation, {0, 1, 2}, zip_city_fd, FilterSide.LHS, counter=wc)
        assert wc.tuples_scanned > 0


class TestCompositeLhs:
    def test_composite_lhs_relaxation(self):
        fd = FunctionalDependency(("a", "b"), "c")
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT), ("c", ColumnType.STRING)],
            [(1, 1, "x"), (1, 1, "y"), (2, 2, "z")],
        )
        result = relax_fd(rel, {0}, fd, FilterSide.LHS)
        assert result.extra_tids == {1}


class TestEstimators:
    def test_lemma1_constant(self):
        assert iterations_needed_rhs_filter() == 1

    def test_hypergeometric_zero_cases(self):
        assert extra_iteration_probability(100, 0, 10) == 0.0
        assert extra_iteration_probability(100, 5, 0) == 0.0

    def test_hypergeometric_certain(self):
        assert extra_iteration_probability(10, 10, 1) == 1.0
        # picking more than the clean tuples must include a violation
        assert extra_iteration_probability(10, 5, 6) == 1.0

    def test_hypergeometric_matches_direct_computation(self):
        # n=10, #vio=2, |AR|=3: P(0) = C(8,3)/C(10,3) = 56/120
        expected = 1.0 - 56.0 / 120.0
        assert math.isclose(
            extra_iteration_probability(10, 2, 3), expected, rel_tol=1e-9
        )

    def test_hypergeometric_monotone_in_result_size(self):
        probs = [extra_iteration_probability(1000, 50, m) for m in (1, 10, 100, 500)]
        assert probs == sorted(probs)

    def test_lemma3_upper_bound_simple(self):
        dataset = {"a": {"x": 5, "y": 3}}
        result = {"a": {"x": 2}}
        # dataset mass of result values = 5; result mass = 2 → bound 3
        assert relaxed_size_upper_bound(dataset, result) == 3

    def test_lemma3_dominates_actual(self, cities_relation, zip_city_fd):
        answer = {0, 2}
        bound = estimate_relaxed_size(cities_relation, answer, zip_city_fd)
        actual = len(
            relax_fd(cities_relation, answer, zip_city_fd, FilterSide.RHS).extra_tids
        )
        assert bound >= actual

    def test_frequency_distribution(self, cities_relation):
        freq = frequency_distribution(cities_relation, "zip")
        assert freq == {9001: 3, 10001: 2}

    def test_frequency_distribution_subset(self, cities_relation):
        freq = frequency_distribution(cities_relation, "zip", tids={0, 3})
        assert freq == {9001: 1, 10001: 1}


# ---------------------------------------------------------------------------
# Property: closure relaxation computes the connected component of the
# bipartite value graph containing the answer.
# ---------------------------------------------------------------------------


def connected_component_tids(rows, answer_tids):
    """Reference implementation via union-find over shared lhs/rhs values."""
    parent = {}

    def find(x):
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        parent[find(a)] = find(b)

    for tid, (lhs, rhs) in enumerate(rows):
        union(("t", tid), ("l", lhs))
        union(("t", tid), ("r", rhs))
    roots = {find(("t", t)) for t in answer_tids}
    return {t for t in range(len(rows)) if find(("t", t)) in roots}


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=15
    ),
    st.data(),
)
def test_closure_equals_connected_component_property(rows, data):
    rel = Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.INT)], rows
    )
    fd = FunctionalDependency("zip", "city")
    answer = {data.draw(st.integers(0, len(rows) - 1))}
    result = relax_fd(rel, answer, fd, FilterSide.LHS)
    assert result.relaxed_tids(answer) == connected_component_tids(rows, answer)
