"""Tests for FD/DC repair, fix merging (Lemma 4), and provenance."""

import math

from hypothesis import given, settings, strategies as st

from repro.constraints import DenialConstraint, FunctionalDependency, Predicate
from repro.detection.thetajoin import ViolationPair
from repro.probabilistic import PValue, ValueRange
from repro.relation import ColumnType, Relation
from repro.repair import (
    CandidateFix,
    CellFix,
    ProvenanceStore,
    RepairDelta,
    apply_fd_delta,
    compute_dc_fixes,
    compute_fd_fixes,
    deltas_equivalent,
    inversion_sets,
    merge_commutes,
    merge_deltas,
)


class TestCellFix:
    def test_add_merges_same_value_world(self):
        fix = CellFix(tid=0, attr="a", original="x")
        fix.add(CandidateFix("x", frozenset({1}), world=0))
        fix.add(CandidateFix("x", frozenset({2}), world=0))
        assert len(fix.candidates) == 1
        assert fix.candidates[0].support == frozenset({1, 2})

    def test_to_pvalue_weights_by_support(self):
        fix = CellFix(tid=0, attr="a", original="x")
        fix.add(CandidateFix("x", frozenset({1, 2}), world=0))
        fix.add(CandidateFix("y", frozenset({3}), world=0))
        pv = fix.to_pvalue()
        assert math.isclose(pv.probability_of("x"), 2 / 3)

    def test_is_trivial(self):
        fix = CellFix(tid=0, attr="a", original="x")
        fix.add(CandidateFix("x", frozenset({0}), world=0))
        assert fix.is_trivial()
        fix.add(CandidateFix("y", frozenset({1}), world=0))
        assert not fix.is_trivial()


class TestRepairDelta:
    def test_add_fix_merges_per_cell(self):
        delta = RepairDelta()
        a = CellFix(tid=0, attr="a", original="x", rules={"r1"})
        a.add(CandidateFix("x", frozenset({0}), 0))
        b = CellFix(tid=0, attr="a", original="x", rules={"r2"})
        b.add(CandidateFix("y", frozenset({1}), 0))
        delta.add_fix(a)
        delta.add_fix(b)
        assert len(delta) == 1
        assert delta.fixes[(0, "a")].rules == {"r1", "r2"}

    def test_trivial_fixes_skipped_in_updates(self):
        delta = RepairDelta()
        fix = CellFix(tid=0, attr="a", original="x")
        fix.add(CandidateFix("x", frozenset({0}), 0))
        delta.add_fix(fix)
        assert delta.cell_updates() == {}


class TestFdRepair:
    """Example 2 semantics (Table 2b)."""

    def fixes_for_la_query(self, cities_relation, zip_city_fd):
        delta, groups = compute_fd_fixes(
            cities_relation,
            zip_city_fd,
            scope_tids={0, 1, 2},
            consult_tids={3},
        )
        return delta, groups

    def test_only_violating_group_repaired(self, cities_relation, zip_city_fd):
        delta, groups = self.fixes_for_la_query(cities_relation, zip_city_fd)
        assert groups == {(9001,)}
        assert all(tid in (0, 1, 2) for tid, _ in delta.fixes)

    def test_rhs_candidates_frequency(self, cities_relation, zip_city_fd):
        delta, _ = self.fixes_for_la_query(cities_relation, zip_city_fd)
        city_fix = delta.fixes[(0, "city")]
        pv = city_fix.to_pvalue()
        assert math.isclose(pv.probability_of("Los Angeles"), 2 / 3)
        assert math.isclose(pv.probability_of("San Francisco"), 1 / 3)

    def test_lhs_candidates_use_consult_tuples(self, cities_relation, zip_city_fd):
        # Tuple 1 (9001, SF): zip candidates {9001, 10001} via the consulted
        # (10001, SF) tuple — exactly Table 2b.
        delta, _ = self.fixes_for_la_query(cities_relation, zip_city_fd)
        zip_fix = delta.fixes[(1, "zip")]
        assert set(zip_fix.values()) == {9001, 10001}

    def test_consult_tuples_not_repaired(self, cities_relation, zip_city_fd):
        delta, _ = self.fixes_for_la_query(cities_relation, zip_city_fd)
        assert (3, "city") not in delta.fixes
        assert (3, "zip") not in delta.fixes

    def test_unambiguous_lhs_stays_concrete(self, cities_relation, zip_city_fd):
        # Tuples 0 and 2 (9001, LA): all LA tuples share zip 9001, so no
        # world-2 instance and no zip fix.
        delta, _ = self.fixes_for_la_query(cities_relation, zip_city_fd)
        assert (0, "zip") not in delta.fixes
        assert (2, "zip") not in delta.fixes

    def test_two_instances_have_two_worlds(self, cities_relation, zip_city_fd):
        delta, _ = self.fixes_for_la_query(cities_relation, zip_city_fd)
        city_fix = delta.fixes[(1, "city")]
        assert city_fix.world_ids() == {1, 2}

    def test_skip_group_keys(self, cities_relation, zip_city_fd):
        delta, groups = compute_fd_fixes(
            cities_relation,
            zip_city_fd,
            scope_tids={0, 1, 2, 3, 4},
            skip_group_keys={(9001,)},
        )
        assert groups == {(10001,)}

    def test_apply_records_provenance(self, cities_relation, zip_city_fd):
        delta, _ = self.fixes_for_la_query(cities_relation, zip_city_fd)
        prov = ProvenanceStore()
        updated = apply_fd_delta(cities_relation, delta, provenance=prov)
        assert prov.original(0, "city") == "Los Angeles"
        assert isinstance(updated.row_by_tid(0).values[1], PValue)

    def test_composite_lhs_fix(self):
        fd = FunctionalDependency(("a", "b"), "c")
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT), ("c", ColumnType.STRING)],
            [(1, 1, "x"), (1, 1, "y"), (1, 1, "x")],
        )
        delta, groups = compute_fd_fixes(rel, fd, scope_tids={0, 1, 2})
        assert groups == {(1, 1)}
        pv = delta.fixes[(0, "c")].to_pvalue()
        assert math.isclose(pv.probability_of("x"), 2 / 3)


class TestDcRepair:
    """Example 5 semantics (holistic range fixes)."""

    def dc(self):
        return DenialConstraint(
            [
                Predicate(0, "salary", "<", 1, "salary"),
                Predicate(0, "tax", ">", 1, "tax"),
            ],
            name="dc",
        )

    def test_inversion_sets_single_atoms(self):
        sets = inversion_sets(self.dc())
        assert sets == [(0,), (1,)]

    def test_inversion_sets_frozen(self):
        sets = inversion_sets(self.dc(), frozen_atoms={0})
        assert sets == [(1,)]

    def test_example5_candidates(self, salary_tax_relation):
        # Violating pair: t3=(2000, 0.3) and t2=(3000, 0.2) → (t1=2, t2=1).
        delta = compute_dc_fixes(
            salary_tax_relation, self.dc(), [ViolationPair(2, 1)]
        )
        # t2's salary: {3000 or < 2000-ish range}; t2's tax: {0.2 or >= 0.3}.
        sal_fix = delta.fixes[(1, "salary")]
        values = sal_fix.values()
        assert 3000 in values
        ranges = [v for v in values if isinstance(v, ValueRange)]
        assert ranges and ranges[0].high == 2000.0

        tax_fix = delta.fixes[(1, "tax")]
        tax_ranges = [v for v in tax_fix.values() if isinstance(v, ValueRange)]
        assert tax_ranges and tax_ranges[0].low == 0.3

    def test_both_tuples_get_options(self, salary_tax_relation):
        delta = compute_dc_fixes(
            salary_tax_relation, self.dc(), [ViolationPair(2, 1)]
        )
        assert (2, "salary") in delta.fixes  # t3's salary can also change
        assert (2, "tax") in delta.fixes

    def test_fifty_fifty_probabilities(self, salary_tax_relation):
        delta = compute_dc_fixes(
            salary_tax_relation, self.dc(), [ViolationPair(2, 1)]
        )
        pv = delta.fixes[(1, "salary")].to_pvalue()
        assert math.isclose(pv.probability_of(3000), 0.5)

    def test_three_atom_dc(self):
        dc = DenialConstraint(
            [
                Predicate(0, "salary", "<", 1, "salary"),
                Predicate(0, "age", "<", 1, "age"),
                Predicate(0, "tax", ">", 1, "tax"),
            ]
        )
        rel = Relation.from_rows(
            [("salary", ColumnType.INT), ("tax", ColumnType.FLOAT), ("age", ColumnType.INT)],
            [(1000, 0.1, 31), (3000, 0.2, 32), (2000, 0.3, 43)],
        )
        sets = inversion_sets(dc)
        assert sets == [(0,), (1,), (2,)]
        delta = compute_dc_fixes(rel, dc, [ViolationPair(2, 1)])
        # age fixes must appear too (the ϕ2 discussion in Example 5)
        assert (1, "age") in delta.fixes or (2, "age") in delta.fixes

    def test_disequality_atom_produces_value_fix(self):
        dc = DenialConstraint(
            [Predicate(0, "a", "=", 1, "a"), Predicate(0, "b", "!=", 1, "b")]
        )
        # force the DC path (normally FD-shaped goes the FD way)
        rel = Relation.from_rows(
            [("a", ColumnType.INT), ("b", ColumnType.INT)], [(1, 10), (1, 20)]
        )
        delta = compute_dc_fixes(rel, dc, [ViolationPair(0, 1)])
        b_fix = delta.fixes[(0, "b")]
        assert 20 in b_fix.values()


class TestMerge:
    """Lemma 4: merging candidate sets is commutative."""

    def make_delta(self, rule, value, support):
        delta = RepairDelta()
        fix = CellFix(tid=0, attr="x", original="o", rules={rule})
        fix.add(CandidateFix("o", frozenset({0}), 0))
        fix.add(CandidateFix(value, frozenset(support), 0))
        delta.add_fix(fix)
        return delta

    def test_merge_unions_support(self):
        a = self.make_delta("r1", "v", {1, 2})
        b = self.make_delta("r2", "v", {3})
        merged = merge_deltas([a, b])
        fix = merged.fixes[(0, "x")]
        cand = next(c for c in fix.candidates if c.value == "v")
        assert cand.support == frozenset({1, 2, 3})

    def test_lemma4_commutativity(self):
        a = self.make_delta("r1", "v", {1, 2})
        b = self.make_delta("r2", "w", {3})
        c = self.make_delta("r3", "v", {4})
        assert merge_commutes([a, b, c])

    def test_merged_probability_reflects_union(self):
        # P(X | Y ∪ Z): supports {1,2} and {2,3} → union size 3 of 4 total.
        a = self.make_delta("r1", "v", {1, 2})
        b = self.make_delta("r2", "v", {2, 3})
        merged = merge_deltas([a, b])
        pv = merged.fixes[(0, "x")].to_pvalue()
        assert math.isclose(pv.probability_of("v"), 3 / 4)

    def test_deltas_equivalent_detects_difference(self):
        a = self.make_delta("r1", "v", {1})
        b = self.make_delta("r1", "w", {1})
        assert not deltas_equivalent(a, b)


class TestProvenance:
    def test_first_writer_wins(self):
        prov = ProvenanceStore()
        prov.record_original(0, "a", "first", "r1")
        prov.record_original(0, "a", "second", "r2")
        assert prov.original(0, "a") == "first"
        assert prov.rules_of(0, "a") == {"r1", "r2"}

    def test_checked_groups(self):
        prov = ProvenanceStore()
        prov.mark_checked("r1", {(1,), (2,)})
        assert prov.is_checked("r1", (1,))
        assert not prov.is_checked("r2", (1,))
        prov.reset_rule("r1")
        assert not prov.is_checked("r1", (1,))

    def test_repaired_cells(self):
        prov = ProvenanceStore()
        prov.record_original(3, "b", 42, "r")
        assert prov.is_repaired(3, "b")
        assert prov.repaired_cells() == {(3, "b")}
        assert len(prov) == 1


# ---------------------------------------------------------------------------
# Property: Lemma 4 commutativity over random per-rule deltas
# ---------------------------------------------------------------------------

fix_st = st.tuples(
    st.sampled_from(["v1", "v2", "v3"]),
    st.sets(st.integers(1, 6), min_size=1, max_size=3),
)


@settings(max_examples=40)
@given(st.lists(st.lists(fix_st, min_size=1, max_size=3), min_size=2, max_size=4))
def test_merge_commutativity_property(per_rule_fixes):
    deltas = []
    for i, fixes in enumerate(per_rule_fixes):
        delta = RepairDelta()
        cell = CellFix(tid=0, attr="x", original="o", rules={f"r{i}"})
        cell.add(CandidateFix("o", frozenset({0}), 0))
        for value, support in fixes:
            cell.add(CandidateFix(value, frozenset(support), 0))
        delta.add_fix(cell)
        deltas.append(delta)
    assert merge_commutes(deltas)
