"""Tests for repair resolution (committing probabilistic data)."""

import math


from repro import Daisy
from repro.core import (
    domain_coverage,
    refine_probabilities,
    resolve_keep_original,
    resolve_most_probable,
    resolve_with,
    resolve_with_master,
)
from repro.probabilistic import Candidate, PValue, ValueRange
from repro.relation import ColumnType, Relation


def cleaned_daisy():
    rel = Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )
    d = Daisy(use_cost_model=False)
    d.register_table("cities", rel)
    d.add_rule("cities", "zip -> city", name="phi")
    d.clean_table("cities")
    return d


def master_relation():
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "Los Angeles"),
            (9001, "Los Angeles"),
            (10001, "New York"),
            (10001, "New York"),
        ],
        name="master",
    )


class TestResolveMostProbable:
    def test_no_probabilistic_cells_left(self):
        d = cleaned_daisy()
        resolved, updates = resolve_most_probable(d.table("cities"))
        assert resolved.probabilistic_cell_count() == 0
        assert updates  # something was resolved

    def test_values_are_candidates(self):
        d = cleaned_daisy()
        rel = d.table("cities")
        resolved, updates = resolve_most_probable(rel)
        for (tid, attr), value in updates.items():
            cell = rel.row_by_tid(tid).values[rel.schema.index_of(attr)]
            assert value in [
                v if not isinstance(v, ValueRange) else v.midpoint()
                for v in cell.values()
            ]


class TestResolveKeepOriginal:
    def test_undo_restores_dirty_values(self):
        d = cleaned_daisy()
        prov = d.provenance("cities")
        resolved, _ = resolve_keep_original(d.table("cities"), prov)
        # Every repaired cell reverted to its original dirty value.
        assert resolved.row_by_tid(1).values[1] == "San Francisco"
        assert resolved.row_by_tid(0).values[1] == "Los Angeles"
        assert resolved.probabilistic_cell_count() == 0


class TestResolveWithMaster:
    def test_oracle_recovers_truth_when_in_domain(self):
        d = cleaned_daisy()
        resolved, updates = resolve_with_master(d.table("cities"), master_relation())
        assert resolved.row_by_tid(1).values[1] == "Los Angeles"
        assert resolved.row_by_tid(4).values[1] == "New York"

    def test_domain_coverage_metric(self):
        d = cleaned_daisy()
        coverage = domain_coverage(d.table("cities"), master_relation())
        # City domains always contain the master value on this example.
        assert coverage > 0.5

    def test_coverage_on_clean_relation_is_one(self):
        rel = Relation.from_rows([("a", ColumnType.INT)], [(1,)])
        assert domain_coverage(rel, rel) == 1.0


class TestResolveWithCustomChooser:
    def test_chooser_receives_cells(self):
        d = cleaned_daisy()
        seen = []

        def choose(tid, attr, pv):
            seen.append((tid, attr))
            return pv.most_probable()

        resolve_with(d.table("cities"), choose)
        assert seen
        assert all(isinstance(t, int) for t, _ in seen)

    def test_range_candidates_concretized(self):
        pv = PValue([Candidate(ValueRange(low=1.0, high=3.0), 1.0)])
        rel = Relation.from_rows([("x", ColumnType.FLOAT)], [(0.0,)])
        rel = rel.update_cells({(0, "x"): pv})
        resolved, _ = resolve_with(rel, lambda _t, _a, p: p.most_probable())
        assert resolved.row_by_tid(0).values[0] == 2.0


class TestRefineProbabilities:
    def test_evidence_boosts_candidate(self):
        pv = PValue([Candidate("a", 0.5), Candidate("b", 0.5)])
        refined = refine_probabilities(pv, {"a": 9, "b": 1})
        assert refined.probability_of("a") > refined.probability_of("b")

    def test_no_evidence_is_identity(self):
        pv = PValue([Candidate("a", 0.5), Candidate("b", 0.5)])
        assert refine_probabilities(pv, {}) is pv

    def test_probabilities_stay_normalized(self):
        pv = PValue([Candidate("a", 0.7), Candidate("b", 0.3)])
        refined = refine_probabilities(pv, {"b": 10}, weight=2.0)
        assert math.isclose(sum(c.prob for c in refined.candidates), 1.0)

    def test_repeated_refinement_converges(self):
        pv = PValue([Candidate("a", 0.5), Candidate("b", 0.5)])
        for _ in range(20):
            pv = refine_probabilities(pv, {"a": 1})
        assert pv.most_probable() == "a"
        assert pv.probability_of("a") > 0.9
