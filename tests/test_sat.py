"""Tests for the DPLL SAT substrate, incl. brute-force equivalence."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.errors import SatError
from repro.sat import (
    CnfFormula,
    FormulaBuilder,
    is_satisfiable,
    minimal_true_models,
    solve,
    solve_all,
)


def brute_force_sat(formula: CnfFormula) -> bool:
    variables = sorted(formula.variables())
    if not variables:
        return not any(len(c) == 0 for c in formula.clauses)
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if formula.evaluate(assignment):
            return True
    return False


class TestCnfFormula:
    def test_add_clause_tracks_vars(self):
        f = CnfFormula([[1, -2], [3]])
        assert f.num_vars == 3
        assert f.variables() == {1, 2, 3}

    def test_empty_clause_rejected_by_default(self):
        f = CnfFormula()
        with pytest.raises(SatError):
            f.add_clause([])

    def test_explicit_empty_clause_unsat(self):
        f = CnfFormula([[1]])
        f.add_empty_clause()
        assert solve(f) is None

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            CnfFormula([[0]])

    def test_evaluate(self):
        f = CnfFormula([[1, 2], [-1]])
        assert f.evaluate({1: False, 2: True})
        assert not f.evaluate({1: False, 2: False})

    def test_evaluate_missing_var(self):
        f = CnfFormula([[1]])
        with pytest.raises(SatError):
            f.evaluate({})


class TestSolve:
    def test_single_unit(self):
        model = solve(CnfFormula([[1]]))
        assert model == {1: True}

    def test_simple_unsat(self):
        assert solve(CnfFormula([[1], [-1]])) is None

    def test_satisfying_assignment_is_valid(self):
        f = CnfFormula([[1, 2], [-1, 3], [-2, -3]])
        model = solve(f)
        assert model is not None
        assert f.evaluate(model)

    def test_unconstrained_vars_default_true(self):
        f = CnfFormula([[1]])
        f._num_vars = 3  # simulate declared-but-unused variables
        model = solve(f)
        assert model == {1: True, 2: True, 3: True}

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: p1h1, p2h1; both must be placed; not both.
        f = CnfFormula([[1], [2], [-1, -2]])
        assert not is_satisfiable(f)

    def test_chain_implication(self):
        # 1 -> 2 -> 3 -> 4, with 1 asserted.
        f = CnfFormula([[1], [-1, 2], [-2, 3], [-3, 4]])
        model = solve(f)
        assert model is not None and all(model[v] for v in (1, 2, 3, 4))


class TestSolveAll:
    def test_enumerates_all_models(self):
        f = CnfFormula([[1, 2]])
        models = list(solve_all(f))
        assert len(models) == 3  # TT, TF, FT

    def test_models_unique(self):
        f = CnfFormula([[1, 2], [2, 3]])
        models = [tuple(sorted(m.items())) for m in solve_all(f)]
        assert len(models) == len(set(models))

    def test_unsat_yields_nothing(self):
        assert list(solve_all(CnfFormula([[1], [-1]]))) == []


class TestMinimalModels:
    def test_dc_clause_minimal_inversions(self):
        # not(p1 & p2 & p3): clause (-1 -2 -3); minimal-false models have
        # exactly one variable false.
        f = CnfFormula([[-1, -2, -3]])
        models = minimal_true_models(f)
        false_sets = sorted(
            tuple(sorted(v for v, val in m.items() if not val)) for m in models
        )
        assert false_sets == [(1,), (2,), (3,)]

    def test_frozen_atom_excluded(self):
        f = CnfFormula([[-1, -2]])
        f.add_unit(1)  # atom 1 must stay true
        models = minimal_true_models(f)
        assert len(models) == 1
        assert models[0][1] is True and models[0][2] is False


class TestFormulaBuilder:
    def test_var_allocation_stable(self):
        b = FormulaBuilder()
        assert b.var("x") == b.var("x")
        assert b.var("y") != b.var("x")

    def test_literal_polarity(self):
        b = FormulaBuilder()
        assert b.literal("x", False) == -b.var("x")

    def test_decode(self):
        b = FormulaBuilder()
        b.add_clause_names([("a", True), ("b", False)])
        model = solve(b.formula)
        assert model is not None
        named = b.decode(model)
        assert set(named) == {"a", "b"}

    def test_name_of_unknown(self):
        with pytest.raises(SatError):
            FormulaBuilder().name_of(42)


# ---------------------------------------------------------------------------
# Property: DPLL agrees with brute force on random small formulas
# ---------------------------------------------------------------------------

clause_st = st.lists(
    st.sampled_from([1, -1, 2, -2, 3, -3, 4, -4]), min_size=1, max_size=3
)


@given(st.lists(clause_st, min_size=1, max_size=8))
def test_dpll_agrees_with_brute_force(clauses):
    f = CnfFormula(clauses)
    model = solve(f)
    if model is None:
        assert not brute_force_sat(f)
    else:
        assert f.evaluate(model)


@given(st.lists(clause_st, min_size=1, max_size=5))
def test_all_enumerated_models_satisfy(clauses):
    f = CnfFormula(clauses)
    for model in solve_all(f):
        full = dict(model)
        for v in f.variables():
            full.setdefault(v, True)
        assert f.evaluate(full)
