"""Unit tests for repro.relation.schema."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.probabilistic import Candidate, PValue
from repro.relation import Column, ColumnType, Schema


class TestColumnType:
    def test_int_accepts_int(self):
        Column("a", ColumnType.INT).validate(3)

    def test_int_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            Column("a", ColumnType.INT).validate("x")

    def test_float_accepts_int(self):
        Column("a", ColumnType.FLOAT).validate(3)

    def test_bool_is_not_int(self):
        with pytest.raises(TypeMismatchError):
            Column("a", ColumnType.INT).validate(True)

    def test_none_always_allowed(self):
        Column("a", ColumnType.INT).validate(None)

    def test_coerce_int(self):
        assert ColumnType.INT.coerce("42") == 42

    def test_coerce_float(self):
        assert ColumnType.FLOAT.coerce("3.5") == 3.5

    def test_coerce_bool(self):
        assert ColumnType.BOOL.coerce("true") is True
        assert ColumnType.BOOL.coerce("0") is False

    def test_probabilistic_cell_validates_candidates(self):
        pv = PValue([Candidate(1, 0.5), Candidate(2, 0.5)])
        Column("a", ColumnType.INT).validate(pv)
        with pytest.raises(TypeMismatchError):
            Column("a", ColumnType.STRING).validate(pv)


class TestSchema:
    def test_from_tuples(self):
        s = Schema([("a", ColumnType.INT), ("b", ColumnType.STRING)])
        assert s.names == ("a", "b")

    def test_from_strings_default_string_type(self):
        s = Schema(["a", "b"])
        assert s.column("a").ctype is ColumnType.STRING

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_index_of(self):
        s = Schema(["a", "b", "c"])
        assert s.index_of("b") == 1

    def test_index_of_unknown_raises_with_context(self):
        s = Schema(["a"])
        with pytest.raises(SchemaError, match="unknown column 'z'"):
            s.index_of("z")

    def test_contains(self):
        s = Schema(["a"])
        assert "a" in s
        assert "z" not in s

    def test_project_preserves_order(self):
        s = Schema(["a", "b", "c"])
        assert s.project(["c", "a"]).names == ("c", "a")

    def test_rename(self):
        s = Schema(["a", "b"]).rename({"a": "x"})
        assert s.names == ("x", "b")

    def test_prefixed(self):
        s = Schema(["a"]).prefixed("t")
        assert s.names == ("t.a",)

    def test_concat(self):
        s = Schema(["a"]).concat(Schema(["b"]))
        assert s.names == ("a", "b")

    def test_concat_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).concat(Schema(["a"]))

    def test_validate_row_arity(self):
        s = Schema([("a", ColumnType.INT)])
        with pytest.raises(SchemaError, match="arity"):
            s.validate_row((1, 2))

    def test_equality_and_hash(self):
        a = Schema([("a", ColumnType.INT)])
        b = Schema([("a", ColumnType.INT)])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")
