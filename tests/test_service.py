"""Service tier: concurrent-equals-serial parity, admission, isolation.

The core invariant under test: every response a concurrent
:class:`~repro.service.DaisyService` run produces is **byte-identical**
(:meth:`ServiceResponse.encode`) to the one the serial one-session-at-a-
time oracle (:func:`~repro.service.replay_serial`) produces replaying the
same admission log on a fresh identical engine — across serial/thread/
process session pools, patch/rebuild matrix maintenance, and the
global-lock scheduling baseline.  Final repaired relations and per-table
work-unit totals must match too.

The seeded-bug tests at the bottom are the isolation counterpart of
``tests/test_witness.py``: ``tests/fixtures/seeded_isolation.py`` plants
torn external updates (marked and unmarked) that must be convicted by
*both* layers — the runtime :class:`~repro.diagnostics.RaceWitness`
(out-of-seam epoch/marker writes) and the new snapshot primitives
(:class:`~repro.service.SnapshotViolation`).  The static half of that
proof lives in ``tests/test_daisylint_ownership.py``.
"""

from __future__ import annotations

import asyncio
import importlib.util
import json
import random
import sys
import threading
from concurrent.futures import Future
from pathlib import Path

import pytest

from repro import Daisy, DaisyConfig
from repro.core.costmodel import DECISION_ADMISSION
from repro.diagnostics import global_witness
from repro.parallel import fork_available
from repro.relation import ColumnType, Relation
from repro.service import (
    DaisyService,
    EpochCasError,
    ServicePolicy,
    ServiceRequest,
    ServiceResponse,
    ServiceServer,
    SnapshotViolation,
    TableTurnstile,
    replay_serial,
)
from repro.service.requests import canonical_encode

_FIXTURE = Path(__file__).resolve().parent / "fixtures" / "seeded_isolation.py"
_spec = importlib.util.spec_from_file_location("seeded_isolation", _FIXTURE)
assert _spec is not None and _spec.loader is not None
seeded_isolation = importlib.util.module_from_spec(_spec)
sys.modules["seeded_isolation"] = seeded_isolation
_spec.loader.exec_module(seeded_isolation)

TABLES = ("cities", "orders")
ZIPS = (10001, 10002, 10003, 10004)


class _Quarantine:
    """Activate the global witness; confiscate violations added inside."""

    def __init__(self) -> None:
        self.witness = global_witness()
        self.taken: list = []

    def __enter__(self) -> "_Quarantine":
        self._before = len(self.witness.violations)
        self.witness.activate()
        return self

    def __exit__(self, *exc) -> None:
        self.taken = self.witness.violations[self._before:]
        del self.witness.violations[self._before:]
        self.witness.deactivate()

    def kinds(self) -> list[str]:
        return [v.kind for v in self.taken]


# ---------------------------------------------------------------------------
# Engine + request-log fixtures
# ---------------------------------------------------------------------------


def _cities_relation() -> Relation:
    rows = []
    for i in range(12):
        zip_code = ZIPS[i % 4]
        # Every zip group carries one conflicting city: dirty FD input.
        city = f"metro{i % 4}" if i % 3 else "smudge"
        rows.append((zip_code, city))
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        rows,
        name="cities",
    )


def _orders_relation() -> Relation:
    rows = []
    for i in range(10):
        k = i % 3
        v = f"item{k}" if i % 4 else "typo"
        rows.append((k, v))
    return Relation.from_rows(
        [("k", ColumnType.INT), ("v", ColumnType.STRING)],
        rows,
        name="orders",
    )


def make_engine(config: DaisyConfig | None = None) -> Daisy:
    engine = Daisy(config=config or DaisyConfig(use_cost_model=False))
    engine.register_table("cities", _cities_relation())
    engine.add_rule("cities", "zip -> city", name="fd_cities")
    engine.register_table("orders", _orders_relation())
    engine.add_rule("orders", "k -> v", name="fd_orders")
    return engine


_CITIES_READS = (
    "SELECT zip, city FROM cities WHERE zip = 10001",
    "SELECT city FROM cities WHERE zip >= 10003",
    "SELECT zip, city FROM cities WHERE zip <= 10002",
    "SELECT zip FROM cities WHERE city = 'metro1'",
)
_ORDERS_READS = (
    "SELECT k, v FROM orders WHERE k = 1",
    "SELECT v FROM orders WHERE k >= 1",
    "SELECT k FROM orders WHERE v = 'item0'",
)
_PREPARED = (
    ("SELECT city FROM cities WHERE zip = ?", ZIPS),
    ("SELECT v FROM orders WHERE k = ?", (0, 1, 2)),
)


def _random_request(rng: random.Random, client: str, seq: int) -> ServiceRequest:
    roll = rng.random()
    if roll < 0.40:
        sql = rng.choice(_CITIES_READS + _ORDERS_READS)
        return ServiceRequest(client=client, seq=seq, kind="execute", sql=sql)
    if roll < 0.60:
        sql, pool = _PREPARED[rng.randrange(len(_PREPARED))]
        return ServiceRequest(
            client=client, seq=seq, kind="prepared", sql=sql,
            params=(rng.choice(pool),),
        )
    if roll < 0.75:
        queries = tuple(
            rng.sample(_CITIES_READS + _ORDERS_READS, rng.randrange(2, 4))
        )
        return ServiceRequest(client=client, seq=seq, kind="batch", queries=queries)
    if roll < 0.90:
        if rng.random() < 0.5:
            cells = tuple(
                (rng.randrange(12), "city", f"metro{rng.randrange(4)}")
                for _ in range(rng.randrange(1, 4))
            )
            return ServiceRequest(
                client=client, seq=seq, kind="update_table",
                table="cities", cells=cells,
            )
        cells = tuple(
            (rng.randrange(10), "v", f"item{rng.randrange(3)}")
            for _ in range(rng.randrange(1, 3))
        )
        return ServiceRequest(
            client=client, seq=seq, kind="update_table",
            table="orders", cells=cells,
        )
    if rng.random() < 0.5:
        tid = rng.randrange(12)
        row = (rng.choice(ZIPS), f"metro{rng.randrange(4)}")
        return ServiceRequest(
            client=client, seq=seq, kind="update_rows",
            table="cities", rows=((tid, row),),
        )
    tid = rng.randrange(10)
    k = rng.randrange(3)
    return ServiceRequest(
        client=client, seq=seq, kind="update_rows",
        table="orders", rows=((tid, (k, f"item{k}")),),
    )


def generate_log(
    seed: int, clients: int = 3, per_client: int = 6
) -> list[ServiceRequest]:
    """A seeded mixed request log: reads, prepared, batches, updates,
    interleaved across ``clients`` simulated clients with per-client
    monotone ``seq`` numbers."""
    rng = random.Random(seed)
    order = [f"c{i}" for i in range(clients)] * per_client
    rng.shuffle(order)
    seqs = {f"c{i}": 0 for i in range(clients)}
    log = []
    for client in order:
        log.append(_random_request(rng, client, seqs[client]))
        seqs[client] += 1
    return log


def run_concurrent(
    log: list[ServiceRequest],
    config: DaisyConfig | None = None,
    policy: ServicePolicy | None = None,
) -> tuple[Daisy, DaisyService, list[ServiceResponse]]:
    engine = make_engine(config)
    service = DaisyService(engine, policy=policy)
    with service:
        futures = [service.submit(request) for request in log]
        responses = [future.result(timeout=120) for future in futures]
    return engine, service, responses


def fingerprint(engine: Daisy, table: str) -> list[tuple[int, tuple[str, ...]]]:
    """The repaired relation, cell by cell (reprs catch PValue candidates)."""
    return [
        (row.tid, tuple(repr(value) for value in row.values))
        for row in engine.table(table).rows
    ]


def assert_serial_parity(
    engine: Daisy,
    service: DaisyService,
    responses: list[ServiceResponse],
    config: DaisyConfig | None = None,
) -> None:
    """The full byte-parity check against the serial oracle."""
    oracle_engine = make_engine(config)
    oracle = replay_serial(oracle_engine, service.admission_log)
    by_admitted = {r.admitted: r for r in responses if r.admitted >= 0}
    assert len(by_admitted) == len(oracle)
    for want in oracle:
        got = by_admitted[want.admitted]
        assert got.encode() == want.encode(), (
            f"response diverged at admission index {want.admitted}: "
            f"{got.to_wire()} != {want.to_wire()}"
        )
    for table in TABLES:
        assert fingerprint(engine, table) == fingerprint(oracle_engine, table)
        assert (
            engine.work_counter(table).total()
            == oracle_engine.work_counter(table).total()
        )


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_canonical_encode_is_byte_stable(self):
        assert canonical_encode({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}'

    def test_request_round_trips_through_wire(self):
        request = ServiceRequest(
            client="c0", seq=3, kind="update_table", table="cities",
            cells=((2, "city", "metro1"),),
        )
        assert ServiceRequest.from_wire(request.to_wire()) == request

    def test_request_validation(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            ServiceRequest(client="c", seq=0, kind="drop")
        with pytest.raises(ValueError, match="need a table"):
            ServiceRequest(client="c", seq=0, kind="update_table")
        with pytest.raises(ValueError, match="need sql"):
            ServiceRequest(client="c", seq=0, kind="execute")
        with pytest.raises(ValueError, match="need queries"):
            ServiceRequest(client="c", seq=0, kind="batch")

    def test_touched_tables_is_the_lock_footprint(self):
        read = ServiceRequest(
            client="c", seq=0, kind="execute", sql=_CITIES_READS[0]
        )
        assert read.touched_tables() == ("cities",)
        batch = ServiceRequest(
            client="c", seq=0, kind="batch",
            queries=(_ORDERS_READS[0], _CITIES_READS[0]),
        )
        assert batch.touched_tables() == ("cities", "orders")
        write = ServiceRequest(
            client="c", seq=0, kind="update_table", table="orders",
            cells=((0, "v", "item0"),),
        )
        assert write.touched_tables() == ("orders",)


# ---------------------------------------------------------------------------
# Turnstiles
# ---------------------------------------------------------------------------


class TestTurnstile:
    def test_tickets_run_in_issue_order(self):
        turnstile = TableTurnstile()
        first, second = turnstile.issue(), turnstile.issue()
        order: list[str] = []

        def late() -> None:
            turnstile.wait_for(second)
            order.append("second")
            turnstile.advance()

        worker = threading.Thread(target=late)
        worker.start()
        turnstile.wait_for(first)
        order.append("first")
        turnstile.advance()
        worker.join(timeout=30)
        assert order == ["first", "second"]
        assert turnstile.serving == 2


# ---------------------------------------------------------------------------
# Snapshot pins and epoch leases through the Session API
# ---------------------------------------------------------------------------


class TestSnapshotPrimitives:
    def test_execute_pinned_matches_plain_execute(self):
        plain = make_engine()
        with plain.connect() as session:
            want = session.execute(_CITIES_READS[0]).relation.to_plain_rows()
        pinned = make_engine()
        with pinned.connect() as session:
            result, snap = session.execute_pinned(_CITIES_READS[0])
            assert snap.epochs() == {"cities": 0}
            assert result.relation.to_plain_rows() == want
        # The read's own cleaning repaired cells without moving the epoch.
        assert pinned.states["cities"].data_epoch == 0

    def test_snapshot_survives_reads_but_not_updates(self):
        engine = make_engine()
        with engine.connect() as session:
            snap = session.snapshot("cities")
            session.execute(_CITIES_READS[1])
            snap.verify()  # cleaning repairs are epoch-neutral
            session.update_table("cities", {(0, "city"): "metro0"})
            with pytest.raises(SnapshotViolation, match="pinned epoch 0"):
                snap.verify()

    def test_epoch_lease_cas_conflict(self):
        engine = make_engine()
        with engine.connect() as session:
            lease_a = session.epoch_lease("cities")
            lease_b = session.epoch_lease("cities")
            report = session.update_table(
                "cities", {(0, "city"): "metro3"}, lease=lease_a
            )
            assert report.epoch == 1
            with pytest.raises(EpochCasError, match="leased epoch 0"):
                lease_b.check()
            with pytest.raises(EpochCasError):
                session.update_table(
                    "cities", {(1, "city"): "metro2"}, lease=lease_b
                )
            # The conflicting write never landed.
            assert engine.states["cities"].data_epoch == 1


# ---------------------------------------------------------------------------
# Concurrent-equals-serial parity
# ---------------------------------------------------------------------------

_POOL_CONFIGS = [
    pytest.param(DaisyConfig(use_cost_model=False), id="serial"),
    pytest.param(
        DaisyConfig(use_cost_model=False, parallelism=2, pool="thread"),
        id="thread-pool",
    ),
    pytest.param(
        DaisyConfig(use_cost_model=False, parallelism=2, pool="process"),
        id="process-pool",
        marks=pytest.mark.skipif(
            not fork_available(), reason="fork start method unavailable"
        ),
    ),
    pytest.param(
        DaisyConfig(use_cost_model=False, matrix_maintenance="patch"),
        id="maintenance-patch",
    ),
    pytest.param(
        DaisyConfig(use_cost_model=False, matrix_maintenance="rebuild"),
        id="maintenance-rebuild",
    ),
]


class TestConcurrentParity:
    @pytest.mark.parametrize("config", _POOL_CONFIGS)
    def test_concurrent_matches_serial_oracle(self, config):
        log = generate_log(seed=11, clients=3, per_client=6)
        engine, service, responses = run_concurrent(log, config=config)
        # Budget 0: everything admits, in submission order.
        assert [r.admitted for r in responses] == list(range(len(log)))
        assert all(r.status in ("ok", "error") for r in responses)
        assert_serial_parity(engine, service, responses, config=config)

    def test_distinct_seeds_distinct_logs_all_parity(self):
        for seed in (1, 2):
            log = generate_log(seed=seed, clients=4, per_client=4)
            engine, service, responses = run_concurrent(log)
            assert_serial_parity(engine, service, responses)

    def test_global_lock_mode_is_parity_equivalent(self):
        log = generate_log(seed=11, clients=3, per_client=6)
        policy = ServicePolicy(mode="global-lock")
        engine, service, responses = run_concurrent(log, policy=policy)
        assert set(service._turnstiles) == {"__global__"}
        assert_serial_parity(engine, service, responses)

    def test_per_table_mode_keeps_one_turnstile_per_table(self):
        log = generate_log(seed=11, clients=3, per_client=6)
        engine, service, responses = run_concurrent(log)
        assert set(service._turnstiles) <= set(TABLES)
        assert_serial_parity(engine, service, responses)

    def test_per_client_seq_order_is_a_subsequence_of_admission(self):
        log = generate_log(seed=7, clients=3, per_client=5)
        _engine, service, responses = run_concurrent(log)
        per_client: dict[str, list[int]] = {}
        for response in sorted(responses, key=lambda r: r.admitted):
            per_client.setdefault(response.client, []).append(response.seq)
        for client, seqs in per_client.items():
            assert seqs == sorted(seqs), f"{client} ran out of order: {seqs}"

    def test_witness_clean_concurrent_run(self):
        """A concurrent mixed run under the instrumented witness: zero
        ownership violations (the smoke-scale version of the soak gate)."""
        log = generate_log(seed=3, clients=2, per_client=5)
        with _Quarantine() as quarantine:
            engine, service, responses = run_concurrent(log)
        assert quarantine.taken == []
        assert_serial_parity(engine, service, responses)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def _cities_read(client: str = "c0", seq: int = 0) -> ServiceRequest:
    return ServiceRequest(
        client=client, seq=seq, kind="execute", sql=_CITIES_READS[0]
    )


def _shutdown_workers(service: DaisyService) -> None:
    for client in sorted(service._workers):
        service._workers[client].enqueue(None)
    for client in sorted(service._workers):
        service._workers[client].join()


class TestAdmissionControl:
    """Deterministic scheduler-level tests: the scheduler functions are
    driven directly on the test thread (no scheduler thread), so every
    admission decision sequence is exactly reproducible."""

    def test_over_budget_request_is_shed(self):
        engine = make_engine()
        service = DaisyService(engine, policy=ServicePolicy(budget_units=5.0))
        request = _cities_read()
        future: Future = Future()
        service._enqueue(request, future)
        service._drain()
        response = future.result(timeout=5)
        assert response.status == "shed"
        assert response.admitted == -1
        assert "shed by admission control" in response.payload["error"]
        assert service.shed_log == [request]
        assert service.admission_log == []
        decisions = [
            d for d in service.planner.decisions if d.kind == DECISION_ADMISSION
        ]
        assert [d.choice for d in decisions] == ["shed"]
        # The cities estimate (12 rows) exceeded the whole budget.
        assert decisions[0].raw_units == 12.0
        assert decisions[0].alternatives["admit"] > 5.0

    def test_head_of_line_delays_until_capacity_frees(self):
        engine = make_engine()
        service = DaisyService(engine, policy=ServicePolicy(budget_units=15.0))
        first, second = Future(), Future()
        service._enqueue(_cities_read("c0", 0), first)
        service._enqueue(_cities_read("c1", 0), second)
        try:
            service._drain()
            # First admitted (12 <= 15); second delayed (12 + 12 > 15).
            assert first.result(timeout=60).status == "ok"
            assert not second.done()
            kind, item, _units = service._inbox.get(timeout=60)
            assert kind == "complete"
            # Feed back observed == raw so the calibration factor stays 1.
            service._complete(item, item.decision.raw_units)
            assert service.queued_units == 0.0
            service._drain()
            assert second.result(timeout=60).status == "ok"
        finally:
            _shutdown_workers(service)
        choices = [
            d.choice for d in service.planner.decisions
            if d.kind == DECISION_ADMISSION
        ]
        assert choices == ["admit", "delay", "admit"]
        assert [r.seq for r in service.admission_log] == [0, 0]

    def test_shutdown_rejects_delayed_requests_as_shed(self):
        engine = make_engine()
        service = DaisyService(engine, policy=ServicePolicy(budget_units=15.0))
        first, second = Future(), Future()
        admitted_request = _cities_read("c0", 0)
        delayed_request = _cities_read("c1", 0)
        service._enqueue(admitted_request, first)
        service._enqueue(delayed_request, second)
        try:
            service._drain()
            service._reject_pending()
        finally:
            first.result(timeout=60)
            _shutdown_workers(service)
        response = second.result(timeout=5)
        assert response.status == "shed"
        assert response.admitted == -1
        assert service.shed_log == [delayed_request]
        assert service.admission_log == [admitted_request]

    def test_zero_budget_disables_admission_control(self):
        engine = make_engine()
        service = DaisyService(engine)  # budget_units == 0.0
        futures = [Future() for _ in range(3)]
        for i, future in enumerate(futures):
            service._enqueue(_cities_read("c0", i), future)
        try:
            service._drain()
            for future in futures:
                assert future.result(timeout=60).status == "ok"
        finally:
            _shutdown_workers(service)
        assert service.shed_log == []
        assert len(service.admission_log) == 3

    def test_budgeted_concurrent_run_still_parity_on_admitted(self):
        """End to end with a real budget: some requests may shed, but the
        admitted subset must still replay byte-identically."""
        log = generate_log(seed=5, clients=3, per_client=5)
        engine, service, responses = run_concurrent(
            log, policy=ServicePolicy(budget_units=40.0)
        )
        assert len(service.admission_log) + len(service.shed_log) == len(log)
        for response in responses:
            if response.status == "shed":
                assert response.admitted == -1
        assert_serial_parity(engine, service, responses)
        decisions = [
            d for d in service.planner.decisions if d.kind == DECISION_ADMISSION
        ]
        assert decisions, "every admission decision must be a PassDecision"
        assert all(d.pass_kind == "admission" for d in decisions)


# ---------------------------------------------------------------------------
# Seeded isolation bugs: witness + snapshot primitives on the same defect
# ---------------------------------------------------------------------------


class TestSeededIsolationBugs:
    """The dynamic half of the torn-read proof (static half:
    ``tests/test_daisylint_ownership.py`` lints the same fixture)."""

    def test_marked_torn_update_rejects_pins_and_trips_witness(self):
        engine = make_engine()
        state = engine.states["cities"]
        with engine.connect() as session:
            caught: list[bool] = []

            def mid_read() -> None:
                with pytest.raises(SnapshotViolation, match="mid-flight"):
                    session.snapshot("cities")
                caught.append(True)

            with _Quarantine() as quarantine:
                seeded_isolation.torn_update(state, mid_read)
            assert caught == [True]
            # The tear finished: epoch moved, marker cleared, pins work again.
            assert state.data_epoch == 1
            assert not state.write_in_progress
            assert session.snapshot("cities").epochs() == {"cities": 1}
        # Every out-of-seam marker/epoch write is a witness seam-violation.
        assert set(quarantine.kinds()) == {"seam-violation"}
        reasons = " ".join(v.reason for v in quarantine.taken)
        assert "TableState.write_in_progress" in reasons
        assert "TableState.data_epoch" in reasons
        sites = {v.event.site for v in quarantine.taken}
        assert any(site.endswith("seeded_isolation.torn_update") for site in sites)

    def test_unmarked_torn_update_caught_by_verify(self):
        engine = make_engine()
        state = engine.states["cities"]
        with engine.connect() as session:
            snaps = []

            def mid_read() -> None:
                snaps.append(session.snapshot("cities"))

            with _Quarantine() as quarantine:
                seeded_isolation.torn_update_unmarked(state, mid_read)
            # The pin constructed fine (no marker was ever raised)...
            assert snaps[0].epochs() == {"cities": 0}
            # ...so only the post-read verify can convict the tear.
            with pytest.raises(SnapshotViolation, match="pinned epoch 0"):
                snaps[0].verify()
        assert quarantine.kinds() == ["seam-violation"]
        assert "TableState.data_epoch" in quarantine.taken[0].reason

    def test_witness_flags_torn_bump_on_seeded_class(self):
        with _Quarantine() as quarantine:
            table = seeded_isolation.SeededEpochTable()
            table.apply()  # the declared seam: no violation
            seeded_isolation.torn_bump(table)
        assert quarantine.kinds() == ["seam-violation"] * 3
        reasons = " ".join(v.reason for v in quarantine.taken)
        assert "SeededEpochTable.write_in_progress" in reasons
        assert "SeededEpochTable.data_epoch" in reasons
        assert table.data_epoch == 2


# ---------------------------------------------------------------------------
# Status surface + HTTP front end
# ---------------------------------------------------------------------------


def _http(
    service: DaisyService, method: str, path: str, body: bytes = b""
) -> tuple[int, bytes]:
    """One HTTP exchange against a fresh in-process server."""

    async def go() -> tuple[int, bytes]:
        server = ServiceServer(service)
        host, port = await server.start()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\nContent-Length: {len(body)}\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
            raw = await reader.read()
            writer.close()
        finally:
            await server.stop()
        head_bytes, _, payload = raw.partition(b"\r\n\r\n")
        status = int(head_bytes.split(b" ", 2)[1])
        return status, payload

    return asyncio.run(go())


class TestHttpServer:
    def test_post_request_and_get_status(self):
        engine = make_engine()
        service = DaisyService(engine)
        with service:
            request = _cities_read()
            status, payload = _http(
                service, "POST", "/v1/requests",
                json.dumps(request.to_wire()).encode(),
            )
            assert status == 200
            data = json.loads(payload)
            assert data["status"] == "ok"
            assert data["epochs"] == {"cities": 0}
            assert data["payload"]["rows"]
            assert data["payload"]["work_units"] > 0

            status, payload = _http(service, "GET", "/v1/status")
            assert status == 200
            snap = json.loads(payload)
            assert snap["mode"] == "per-table"
            assert snap["admitted"] == 1
            assert snap["tables"]["cities"]["data_epoch"] == 0

    def test_response_bytes_equal_oracle_bytes(self):
        engine = make_engine()
        service = DaisyService(engine)
        with service:
            request = _cities_read()
            _status, payload = _http(
                service, "POST", "/v1/requests",
                json.dumps(request.to_wire()).encode(),
            )
            log = list(service.admission_log)
        want = replay_serial(make_engine(), log)[0]
        assert payload == want.encode()

    def test_bad_json_is_400(self):
        engine = make_engine()
        service = DaisyService(engine)
        with service:
            status, payload = _http(
                service, "POST", "/v1/requests", b"{not json"
            )
        assert status == 400
        assert b"error" in payload

    def test_unknown_route_is_404(self):
        engine = make_engine()
        service = DaisyService(engine)
        with service:
            status, _payload = _http(service, "GET", "/v1/nothing")
        assert status == 404

    def test_shed_request_is_429(self):
        engine = make_engine()
        service = DaisyService(engine, policy=ServicePolicy(budget_units=5.0))
        with service:
            status, payload = _http(
                service, "POST", "/v1/requests",
                json.dumps(_cities_read().to_wire()).encode(),
            )
        assert status == 429
        assert json.loads(payload)["status"] == "shed"


class TestStatusSurface:
    def test_status_tracks_epochs_and_admission(self):
        log = generate_log(seed=11, clients=3, per_client=6)
        engine, service, responses = run_concurrent(log)
        status = service.status()
        assert status["admitted"] == len(log)
        assert status["shed"] == 0
        assert sorted(status["tables"]) == sorted(TABLES)
        for table in TABLES:
            assert (
                status["tables"][table]["data_epoch"]
                == engine.states[table].data_epoch
            )
        assert status["clients"] == sorted({r.client for r in log})
