"""Property-based snapshot-isolation tests for the service tier.

Hypothesis drives randomized interleavings of reads and external updates
from two clients through a concurrent :class:`~repro.service.DaisyService`
and checks, for every generated schedule:

* **byte parity** — each response equals the serial oracle's replay of the
  admission log, byte for byte;
* **snapshot isolation** — every read's pinned epoch is *exactly* the
  table's epoch at its admission point (the number of update batches that
  applied cells before it in admission order), never a torn in-between
  state;
* **epoch monotonicity** — observed epochs never decrease along the
  admission order.

The properties run twice: on the in-memory engine and on a spill-to-disk
engine (``memory_budget_mb=1`` with a forced ``mmap`` stripe store), so a
pinned read that resolves columns against on-disk stripes is held to the
same isolation contract.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
import pytest

from repro import Daisy, DaisyConfig
from repro.relation import ColumnType, Relation
from repro.service import DaisyService, ServiceRequest, replay_serial
from repro.service.requests import WRITE_KINDS

TABLE = "t"
NUM_ROWS = 6

_READS = (
    "SELECT k, v FROM t WHERE k = 1",
    "SELECT v FROM t WHERE k >= 0",
    "SELECT k FROM t WHERE v = 'x'",
)


def make_engine(storage: str) -> Daisy:
    config = DaisyConfig(use_cost_model=False, storage=storage)
    if storage != "memory":
        config = DaisyConfig(
            use_cost_model=False, storage=storage, memory_budget_mb=1
        )
    engine = Daisy(config=config)
    rows = [(i % 3, "x" if i % 2 else "y") for i in range(NUM_ROWS)]
    engine.register_table(
        TABLE,
        Relation.from_rows(
            [("k", ColumnType.INT), ("v", ColumnType.STRING)], rows, name=TABLE
        ),
    )
    engine.add_rule(TABLE, "k -> v", name="fd")
    return engine


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.sampled_from(_READS)),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=NUM_ROWS - 1),
            st.sampled_from(("x", "y", "z")),
        ),
    ),
    min_size=2,
    max_size=8,
)


def _to_requests(ops) -> list[ServiceRequest]:
    seqs = {"c0": 0, "c1": 0}
    requests = []
    for i, op in enumerate(ops):
        client = f"c{i % 2}"
        seq = seqs[client]
        seqs[client] += 1
        if op[0] == "read":
            requests.append(
                ServiceRequest(client=client, seq=seq, kind="execute", sql=op[1])
            )
        else:
            _kind, tid, value = op
            requests.append(
                ServiceRequest(
                    client=client, seq=seq, kind="update_table",
                    table=TABLE, cells=((tid, "v", value),),
                )
            )
    return requests


def _check_schedule(storage: str, ops) -> None:
    log = _to_requests(ops)
    engine = make_engine(storage)
    service = DaisyService(engine)
    try:
        with service:
            futures = [service.submit(request) for request in log]
            responses = [future.result(timeout=120) for future in futures]
    finally:
        engine.close()

    assert all(response.status == "ok" for response in responses)

    oracle_engine = make_engine(storage)
    try:
        oracle = replay_serial(oracle_engine, service.admission_log)
    finally:
        oracle_engine.close()
    by_admitted = {r.admitted: r for r in responses}
    assert len(by_admitted) == len(oracle)
    for want in oracle:
        assert by_admitted[want.admitted].encode() == want.encode()

    # Snapshot isolation: a read pins exactly the admission-time epoch —
    # the epoch after every earlier-admitted update batch, no tears.
    current = 0
    for response in sorted(responses, key=lambda r: r.admitted):
        observed = dict(response.epochs)[TABLE]
        assert observed >= current, "epochs must be monotone in admission order"
        if response.kind in WRITE_KINDS:
            assert observed == response.payload["epoch"]
            assert observed in (current, current + 1)
            current = observed
        else:
            assert observed == current, (
                f"read at admission {response.admitted} pinned epoch "
                f"{observed}, expected the admission-time epoch {current}"
            )


class TestSnapshotIsolationProperties:
    @settings(max_examples=12, deadline=None)
    @given(ops=_OPS)
    def test_in_memory_schedules(self, ops):
        _check_schedule("memory", ops)

    @settings(max_examples=6, deadline=None)
    @given(ops=_OPS)
    def test_spilled_schedules_under_1mb_budget(self, ops):
        _check_schedule("mmap", ops)

    @settings(max_examples=4, deadline=None)
    @given(ops=_OPS)
    def test_sqlite_schedules_under_1mb_budget(self, ops):
        _check_schedule("sqlite", ops)


def test_generated_requests_interleave_clients():
    ops = [("read", _READS[0]), ("update", 0, "z"), ("read", _READS[1])]
    requests = _to_requests(ops)
    assert [r.client for r in requests] == ["c0", "c1", "c0"]
    assert [r.seq for r in requests] == [0, 0, 1]
