"""Stress/soak test of the concurrent service tier (``@pytest.mark.slow``).

Excluded from tier-1 (``addopts = -m 'not slow'`` in pyproject.toml); CI
runs it as a dedicated job with ``-m slow`` under the instrumented race
witness.  For ``REPRO_SOAK_SECONDS`` (default 30) wall seconds it keeps a
mixed read/update workload in flight — several reader clients per table
plus writer clients issuing external update batches — and then asserts:

* every response resolved ``ok`` (no errors, no sheds at budget 0);
* **zero** ownership/isolation violations were recorded by the witness
  while the soak ran;
* observed epochs are monotone non-decreasing per table along the
  admission order, and every writer's commit advanced the epoch by at
  most one batch (the single-writer-per-table CAS discipline held).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.diagnostics import watching
from repro.metrics.timing import clock
from repro.service import DaisyService
from repro.service.requests import ServiceRequest, WRITE_KINDS

from test_service import TABLES, ZIPS, _CITIES_READS, _ORDERS_READS, make_engine

pytestmark = pytest.mark.slow

#: Futures kept in flight per wave; bounds memory and gives the scheduler
#: a steady queue without ever letting it drain fully dry.
WAVE = 40


def _soak_request(rng: random.Random, client: str, seq: int) -> ServiceRequest:
    roll = rng.random()
    if client.startswith("reader-cities"):
        if roll < 0.8:
            return ServiceRequest(
                client=client, seq=seq, kind="execute",
                sql=rng.choice(_CITIES_READS),
            )
        return ServiceRequest(
            client=client, seq=seq, kind="batch",
            queries=tuple(rng.sample(_CITIES_READS + _ORDERS_READS, 2)),
        )
    if client.startswith("reader-orders"):
        return ServiceRequest(
            client=client, seq=seq, kind="execute",
            sql=rng.choice(_ORDERS_READS),
        )
    if client == "writer-cities":
        cells = tuple(
            (rng.randrange(12), "city", f"metro{rng.randrange(4)}")
            for _ in range(rng.randrange(1, 3))
        )
        return ServiceRequest(
            client=client, seq=seq, kind="update_table",
            table="cities", cells=cells,
        )
    tid = rng.randrange(10)
    if roll < 0.5:
        k = rng.randrange(3)
        return ServiceRequest(
            client=client, seq=seq, kind="update_rows",
            table="orders", rows=((tid, (k, f"item{k}")),),
        )
    return ServiceRequest(
        client=client, seq=seq, kind="update_table",
        table="orders", cells=((tid, "v", f"item{rng.randrange(3)}"),),
    )


def test_mixed_soak_zero_violations_and_monotone_epochs():
    seconds = float(os.environ.get("REPRO_SOAK_SECONDS", "30"))
    clients = (
        "reader-cities-0", "reader-cities-1", "reader-orders-0",
        "writer-cities", "writer-orders",
    )
    rng = random.Random(20260808)
    seqs = {client: 0 for client in clients}
    engine = make_engine()
    responses = []
    with watching() as witness:
        before = len(witness.violations)
        with DaisyService(engine) as service:
            deadline = clock() + seconds
            while clock() < deadline:
                wave = []
                for _ in range(WAVE):
                    client = rng.choice(clients)
                    request = _soak_request(rng, client, seqs[client])
                    seqs[client] += 1
                    wave.append(service.submit(request))
                responses.extend(f.result(timeout=300) for f in wave)
            taken = len(service.admission_log)
        violations = witness.violations[before:]

    assert violations == [], [v.reason for v in violations]
    assert responses, "the soak must have completed at least one wave"
    assert taken == len(responses)
    assert all(r.status == "ok" for r in responses)

    # Epoch progression: monotone per table along the admission order,
    # and each applied update batch advances by exactly one.
    current = {table: 0 for table in TABLES}
    ordered = sorted(responses, key=lambda r: r.admitted)
    for response in ordered:
        for table, epoch in response.epochs:
            assert epoch >= current[table], (
                f"epoch went backwards on {table} at admission "
                f"{response.admitted}: {current[table]} -> {epoch}"
            )
            if response.kind in WRITE_KINDS:
                assert epoch <= current[table] + 1
            else:
                assert epoch == current[table]
            current[table] = epoch
    assert sum(current.values()) > 0, "writers must have advanced the epochs"

    # Sanity on the workload shape: both tables saw reads and writes.
    kinds_by_table = {table: set() for table in TABLES}
    for response in ordered:
        for table, _epoch in response.epochs:
            kinds_by_table[table].add(
                "write" if response.kind in WRITE_KINDS else "read"
            )
    assert all(
        kinds_by_table[table] == {"read", "write"} for table in TABLES
    ), kinds_by_table
