"""Tests for the SQL parser and query AST."""

import pytest

from repro.errors import QueryError, QueryParseError
from repro.query import Connector, parse_sql
from repro.query.ast import ColumnRef


class TestBasicSelect:
    def test_select_star(self):
        q = parse_sql("SELECT * FROM t")
        assert q.select_star
        assert q.tables == ["t"]

    def test_projection_list(self):
        q = parse_sql("SELECT a, b FROM t")
        assert [c.name for c in q.projection] == ["a", "b"]

    def test_qualified_columns(self):
        q = parse_sql("SELECT t.a FROM t")
        assert q.projection[0] == ColumnRef(name="a", table="t")

    def test_case_insensitive_keywords(self):
        q = parse_sql("select a from t where a = 1")
        assert q.conditions[0].value == 1

    def test_trailing_semicolon(self):
        q = parse_sql("SELECT a FROM t;")
        assert q.tables == ["t"]


class TestWhere:
    def test_numeric_condition(self):
        q = parse_sql("SELECT a FROM t WHERE a >= 10")
        cond = q.conditions[0]
        assert cond.op == ">=" and cond.value == 10

    def test_float_condition(self):
        q = parse_sql("SELECT a FROM t WHERE a < 1.5")
        assert q.conditions[0].value == 1.5

    def test_string_condition(self):
        q = parse_sql("SELECT a FROM t WHERE city = 'Los Angeles'")
        assert q.conditions[0].value == "Los Angeles"

    def test_negative_number(self):
        q = parse_sql("SELECT a FROM t WHERE a > -5")
        assert q.conditions[0].value == -5

    def test_and_conditions(self):
        q = parse_sql("SELECT a FROM t WHERE a >= 1 AND a < 10")
        assert len(q.conditions) == 2
        assert q.connector is Connector.AND

    def test_or_conditions(self):
        q = parse_sql("SELECT a FROM t WHERE a = 1 OR a = 2")
        assert q.connector is Connector.OR

    def test_mixed_and_or_rejected(self):
        with pytest.raises(QueryParseError):
            parse_sql("SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3")

    def test_neq_alias(self):
        q = parse_sql("SELECT a FROM t WHERE a <> 3")
        assert q.conditions[0].op == "!="


class TestJoins:
    def test_join_condition_extracted(self):
        q = parse_sql(
            "SELECT a FROM t1, t2 WHERE t1.k = t2.k"
        )
        assert len(q.join_conditions) == 1
        jc = q.join_conditions[0]
        assert jc.left.table == "t1" and jc.right.table == "t2"

    def test_join_plus_filter(self):
        q = parse_sql(
            "SELECT a FROM t1, t2 WHERE t1.k = t2.k AND t1.a > 5"
        )
        assert len(q.join_conditions) == 1
        assert len(q.conditions) == 1

    def test_missing_join_condition_rejected(self):
        with pytest.raises(QueryError):
            parse_sql("SELECT a FROM t1, t2 WHERE t1.a = 1")

    def test_non_equi_join_rejected(self):
        with pytest.raises(QueryParseError):
            parse_sql("SELECT a FROM t1, t2 WHERE t1.k < t2.k")

    def test_three_table_chain(self):
        q = parse_sql(
            "SELECT a FROM t1, t2, t3 WHERE t1.k = t2.k AND t2.j = t3.j"
        )
        assert len(q.join_conditions) == 2


class TestAggregates:
    def test_count_star(self):
        q = parse_sql("SELECT COUNT(*) FROM t")
        agg = q.aggregates[0]
        assert agg.func == "count" and agg.column.name == "*"

    def test_avg_with_alias(self):
        q = parse_sql("SELECT AVG(x) AS mean_x FROM t")
        assert q.aggregates[0].alias == "mean_x"

    def test_default_alias(self):
        q = parse_sql("SELECT SUM(x) FROM t")
        assert q.aggregates[0].alias == "sum_x"

    def test_group_by(self):
        q = parse_sql("SELECT g, COUNT(*) FROM t GROUP BY g")
        assert [c.name for c in q.group_by] == ["g"]

    def test_group_by_multiple_keys(self):
        q = parse_sql(
            "SELECT a, b, SUM(x) FROM t GROUP BY a, b"
        )
        assert len(q.group_by) == 2

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(QueryError):
            parse_sql("SELECT g FROM t GROUP BY g")


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_sql("SELEKT a FROM t")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryParseError):
            parse_sql("SELECT a FROM t LIMIT 5")

    def test_empty_rejected(self):
        with pytest.raises(QueryParseError):
            parse_sql("")

    def test_missing_from(self):
        with pytest.raises(QueryParseError):
            parse_sql("SELECT a")


class TestQueryHelpers:
    def test_where_attrs(self):
        q = parse_sql("SELECT a FROM t WHERE b = 1 AND c > 2")
        assert q.where_attrs() == {"b", "c"}

    def test_projection_attrs_includes_groupby_and_aggs(self):
        q = parse_sql("SELECT g, SUM(x) FROM t GROUP BY g")
        assert q.projection_attrs() == {"g", "x"}

    def test_is_join_query(self):
        assert not parse_sql("SELECT a FROM t").is_join_query()
        assert parse_sql(
            "SELECT a FROM t1, t2 WHERE t1.k = t2.k"
        ).is_join_query()
