"""Storage handle hygiene: nothing survives a close.

The lifecycle contract: ``Session.close()`` releases every storage OS
handle engine-wide (SQLite connections; stripe reads are already
transient ``open``+``mmap`` pairs closed before ``load_column`` returns),
and ``Daisy.close()`` additionally deletes the spill root, leaving no
temp files behind.  A closed engine's tables keep working — the columns
are materialized back to RAM at detach — and a later session re-spills
them from scratch.

The ``fd_leak_check`` fixture asserts process-wide: no new open file
descriptors and no surviving ``daisy-storage-*`` temp directories after
each test in this module.
"""

from __future__ import annotations

import gc
import os
import tempfile
from pathlib import Path

import pytest

from repro import Daisy
from repro.datasets import hospital


def _open_fds() -> set[int]:
    return {int(fd) for fd in os.listdir("/proc/self/fd")}


def _spill_roots() -> set[str]:
    tmp = Path(tempfile.gettempdir())
    return {p.name for p in tmp.glob("daisy-storage-*")}


@pytest.fixture
def fd_leak_check():
    """Fail the test if it leaks fds or spill directories."""
    gc.collect()
    fds_before = _open_fds()
    roots_before = _spill_roots()
    yield
    gc.collect()
    leaked_fds = _open_fds() - fds_before
    leaked_roots = _spill_roots() - roots_before
    assert not leaked_fds, f"leaked file descriptors: {sorted(leaked_fds)}"
    assert not leaked_roots, f"leaked spill directories: {sorted(leaked_roots)}"


def _spilled_daisy(storage: str) -> Daisy:
    instance = hospital.generate_instance(num_rows=200, seed=11)
    daisy = Daisy(use_cost_model=False, storage=storage, memory_budget_mb=1)
    daisy.register_table("hospital", instance.dirty)
    for fd in instance.rules:
        daisy.add_rule("hospital", fd)
    return daisy


@pytest.mark.parametrize("storage", ["mmap", "sqlite"])
def test_session_close_releases_every_handle(fd_leak_check, storage):
    daisy = _spilled_daisy(storage)
    try:
        with daisy.connect() as session:
            session.execute("SELECT city FROM hospital WHERE zip = 10003")
            session.execute("SELECT zip FROM hospital WHERE city = 'City001'")
        assert daisy.storage_manager.open_handle_count() == 0
    finally:
        daisy.close()


@pytest.mark.parametrize("storage", ["mmap", "sqlite"])
def test_engine_close_deletes_spill_root(fd_leak_check, storage):
    daisy = _spilled_daisy(storage)
    with daisy.connect() as session:
        session.execute("SELECT city FROM hospital WHERE zip = 10003")
    assert daisy.storage_manager.spill_root_exists()
    daisy.close()
    assert not daisy.storage_manager.spill_root_exists()
    assert daisy.storage_manager.open_handle_count() == 0


def test_closed_engine_tables_still_work(fd_leak_check):
    """Detach materializes columns back to RAM: queries keep answering."""
    daisy = _spilled_daisy("sqlite")
    with daisy.connect() as session:
        before = session.execute(
            "SELECT city FROM hospital WHERE zip = 10003"
        ).relation.to_plain_rows()
    daisy.close()
    with daisy.connect() as session:
        after = session.execute(
            "SELECT city FROM hospital WHERE zip = 10003"
        ).relation.to_plain_rows()
    assert after == before
    daisy.close()


def test_repairs_survive_engine_close(fd_leak_check):
    """Spilled repaired state equals the state after detach + close."""
    daisy = _spilled_daisy("mmap")
    with daisy.connect() as session:
        session.execute("SELECT city FROM hospital WHERE zip = 10003")
    fingerprint = [repr(row) for row in daisy.table("hospital").rows]
    daisy.close()
    assert [repr(row) for row in daisy.table("hospital").rows] == fingerprint


def test_double_close_is_idempotent(fd_leak_check):
    daisy = _spilled_daisy("sqlite")
    with daisy.connect() as session:
        session.execute("SELECT city FROM hospital WHERE zip = 10003")
    daisy.close()
    daisy.close()
    assert daisy.storage_manager.open_handle_count() == 0


def test_memory_mode_creates_no_spill_state(fd_leak_check):
    daisy = _spilled_daisy("memory")
    with daisy.connect() as session:
        session.execute("SELECT city FROM hospital WHERE zip = 10003")
    assert not daisy.storage_manager.spill_root_exists()
    assert daisy.storage_manager.tables() == []
    daisy.close()


def test_stripe_reads_leave_no_open_fds(fd_leak_check, tmp_path):
    """load_column's open+mmap pairs are closed before it returns."""
    from repro.storage.stripestore import StripeStore

    store = StripeStore(tmp_path, memory_budget_mb=0, chunk_rows=8)
    try:
        store.put_column("a", list(range(100)))
        for _ in range(5):
            store.load_column("a", store.generation("a"))
        assert store.open_fd_count() == 0
    finally:
        store.close()
