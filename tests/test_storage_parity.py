"""Storage-backend parity: memory / mmap / sqlite are byte-identical.

The storage layer's contract (ROADMAP: out-of-core spill under the
kernel-oracle discipline): where column bytes *live* — RAM lists, on-disk
stripe chunks mapped back on demand, or the SQLite pushdown mirror — must
never change what the engine computes.  Every suite here runs the same
workload once per storage mode and asserts byte-identity of

* query results (rows with exact cells, PValue candidates included),
* the final repaired relation,
* work-unit totals (storage I/O is deliberately not charged),
* the per-query log (errors fixed, extra tuples, result sizes),

across serial, thread-pool, and fork-process-pool sessions and across
patch vs rebuild matrix maintenance.  ``memory`` is the oracle.
"""

from __future__ import annotations

import pytest

from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.datasets import airquality, hospital, workloads
from repro.parallel import fork_available
from repro.relation import ColumnType, Relation
from repro.storage.modes import STORAGE_MODES

#: A budget (1 MB) small enough that every fixture table is over it, so
#: mmap/sqlite modes really spill and the LRU tracker really evicts.
TIGHT_BUDGET_MB = 1


def _relation_fingerprint(rel: Relation) -> list[tuple]:
    return [(row.tid, tuple(repr(c) for c in row.values)) for row in rel.rows]


def _run_workload(make_daisy, table, queries):
    daisy = make_daisy()
    try:
        with daisy.connect() as session:
            rows = [session.execute(q).relation.to_plain_rows() for q in queries]
            log = [
                (e.errors_fixed, e.extra_tuples, e.result_size)
                for e in session.query_log
            ]
        return {
            "rows": rows,
            "log": log,
            "relation": _relation_fingerprint(daisy.table(table)),
            "work": daisy.work_counter(table).as_dict(),
            "pcells": daisy.probabilistic_cells(table),
        }
    finally:
        daisy.close()


def _hospital_make(storage, **config_kwargs):
    def make() -> Daisy:
        daisy = Daisy(
            config=DaisyConfig(
                use_cost_model=False,
                storage=storage,
                memory_budget_mb=TIGHT_BUDGET_MB,
                **config_kwargs,
            )
        )
        fresh = hospital.generate_instance(num_rows=300, seed=11)
        daisy.register_table("hospital", fresh.dirty)
        for fd in fresh.rules:
            daisy.add_rule("hospital", fd)
        return daisy

    return make


def _hospital_queries() -> list[str]:
    return [
        "SELECT zip FROM hospital WHERE city = 'City001'",
        "SELECT city FROM hospital WHERE zip = 10003",
        "SELECT hospital_name, zip FROM hospital WHERE zip >= 10000 AND zip < 10008",
        "SELECT phone FROM hospital WHERE zip = 10001",
        "SELECT * FROM hospital WHERE provider_id < 40",
    ]


def _dc_relation(n: int = 300, seed: int = 7):
    import random

    rng = random.Random(seed)
    raw = []
    for i in range(n):
        price = 100.0 + i * 10.0
        discount = round(0.01 + i * 0.0001, 6)
        if rng.random() < 0.1:
            discount = round(discount + rng.uniform(-0.02, 0.02), 6)
        raw.append((i, price, discount))
    relation = Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("extended_price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        raw,
        name="lineorder",
    )
    dc = DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )
    return relation, dc


class TestFdWorkloadParity:
    """FD cleaning (hospital): every mode equals the memory oracle."""

    def test_serial_modes_byte_identical(self):
        oracle = _run_workload(
            _hospital_make("memory"), "hospital", _hospital_queries()
        )
        for mode in ("mmap", "sqlite"):
            got = _run_workload(
                _hospital_make(mode), "hospital", _hospital_queries()
            )
            assert got == oracle, f"storage={mode} diverged from memory"

    @pytest.mark.parametrize("mode", ["mmap", "sqlite"])
    def test_thread_pool_modes_byte_identical(self, mode):
        oracle = _run_workload(
            _hospital_make("memory"), "hospital", _hospital_queries()
        )
        got = _run_workload(
            _hospital_make(mode, parallelism=2, pool="thread", num_shards=4),
            "hospital",
            _hospital_queries(),
        )
        assert got == oracle

    @pytest.mark.skipif(not fork_available(), reason="no fork on this platform")
    @pytest.mark.parametrize("mode", ["mmap", "sqlite"])
    def test_process_pool_modes_byte_identical(self, mode):
        oracle = _run_workload(
            _hospital_make("memory"), "hospital", _hospital_queries()
        )
        got = _run_workload(
            _hospital_make(mode, parallelism=2, pool="process"),
            "hospital",
            _hospital_queries(),
        )
        assert got == oracle


class TestDcWorkloadParity:
    """DC theta-join workload: repairs route through the patch stream and
    must survive evict-then-reload in every spill mode."""

    def _make(self, storage, **config_kwargs):
        def make() -> Daisy:
            rel, dc = _dc_relation()
            daisy = Daisy(
                config=DaisyConfig(
                    use_cost_model=False,
                    storage=storage,
                    memory_budget_mb=TIGHT_BUDGET_MB,
                    **config_kwargs,
                )
            )
            daisy.register_table("lineorder", rel)
            daisy.add_rule("lineorder", dc)
            return daisy

        return make

    def _queries(self):
        return workloads.range_queries(
            "lineorder", "extended_price", 3100, 6,
            projection="orderkey, extended_price, discount",
        )

    def test_serial_modes_byte_identical(self):
        oracle = _run_workload(self._make("memory"), "lineorder", self._queries())
        for mode in ("mmap", "sqlite"):
            got = _run_workload(self._make(mode), "lineorder", self._queries())
            assert got == oracle, f"storage={mode} diverged from memory"

    @pytest.mark.parametrize("mode", ["mmap", "sqlite"])
    def test_maintenance_modes_byte_identical(self, mode):
        """patch vs rebuild maintenance, each spilled, equals the oracle."""
        oracle = _run_workload(self._make("memory"), "lineorder", self._queries())
        for maintenance in ("patch", "rebuild"):
            got = _run_workload(
                self._make(mode, matrix_maintenance=maintenance),
                "lineorder",
                self._queries(),
            )
            assert got == oracle, (
                f"storage={mode} maintenance={maintenance} diverged"
            )

    @pytest.mark.skipif(not fork_available(), reason="no fork on this platform")
    def test_sqlite_process_pool_byte_identical(self):
        oracle = _run_workload(self._make("memory"), "lineorder", self._queries())
        got = _run_workload(
            self._make("sqlite", parallelism=2, pool="process"),
            "lineorder",
            self._queries(),
        )
        assert got == oracle


class TestAirQualityBatchParity:
    def test_batch_workload_modes_byte_identical(self):
        def make(storage):
            def build() -> Daisy:
                daisy = Daisy(
                    config=DaisyConfig(
                        use_cost_model=False,
                        storage=storage,
                        memory_budget_mb=TIGHT_BUDGET_MB,
                    )
                )
                fresh = airquality.generate_instance(
                    num_rows=600, num_states=8, violation_level="high", seed=17
                )
                daisy.register_table("airquality", fresh.dirty)
                daisy.add_rule("airquality", fresh.fd)
                return daisy

            return build

        queries = airquality.state_co_queries(num_states=8)
        results = {}
        for mode in STORAGE_MODES:
            daisy = make(mode)()
            try:
                with daisy.connect() as session:
                    batch = session.execute_batch(list(queries))
                    rows = [r.relation.to_plain_rows() for r in batch.results]
                results[mode] = (
                    rows,
                    _relation_fingerprint(daisy.table("airquality")),
                    daisy.work_counter("airquality").as_dict(),
                )
            finally:
                daisy.close()
        assert results["mmap"] == results["memory"]
        assert results["sqlite"] == results["memory"]


def _wide_relation(n_rows: int = 6000) -> Relation:
    """A table whose modeled resident size exceeds the 1 MB budget
    (``n_rows * n_cols * CELL_BYTES > 1 MiB``), so ``auto`` must spill."""
    return Relation.from_rows(
        [
            ("k", ColumnType.INT),
            ("a", ColumnType.INT),
            ("b", ColumnType.FLOAT),
            ("c", ColumnType.STRING),
        ],
        [(i, i % 97, float(i) / 3.0, f"v{i % 53}") for i in range(n_rows)],
        name="wide",
    )


class TestAutoModeParity:
    def test_auto_equals_every_forced_mode(self):
        """storage="auto" pins a concrete mode; results match the oracle."""
        oracle = _run_workload(
            _hospital_make("memory"), "hospital", _hospital_queries()
        )
        got = _run_workload(
            _hospital_make("auto"), "hospital", _hospital_queries()
        )
        assert got == oracle

    def test_auto_pins_memory_when_budget_unlimited(self):
        daisy = Daisy(use_cost_model=False, storage="auto", memory_budget_mb=0)
        try:
            daisy.register_table("wide", _wide_relation(500))
            with daisy.connect():
                pass
            assert daisy.states["wide"].storage == "memory"
        finally:
            daisy.close()

    def test_auto_pins_spill_mode_under_tight_budget(self):
        daisy = Daisy(
            use_cost_model=False, storage="auto",
            memory_budget_mb=TIGHT_BUDGET_MB,
        )
        try:
            daisy.register_table("wide", _wide_relation())
            with daisy.connect():
                pass
            assert daisy.states["wide"].storage in ("mmap", "sqlite")
        finally:
            daisy.close()


class TestEvictionReallyHappens:
    """The spill plumbing is exercised for real: stripes are written,
    evicted under a shrunken budget, and reloaded from disk."""

    def test_stripe_store_evicts_and_reloads_under_budget(self):
        daisy = _hospital_make("mmap")()
        try:
            queries = _hospital_queries()
            with daisy.connect() as session:
                session.execute(queries[0])
                stores = daisy.storage_manager.tables()
                assert stores, "spill mode never attached a table store"
                # Shrink the resident budget far below one column so the
                # LRU tracker must evict on every subsequent load.
                for t in stores:
                    t.store.tracker.set_budget(1024)
                for q in queries[1:]:
                    session.execute(q)
            assert any(t.store.chunk_writes > 0 for t in stores)
            assert any(t.store.tracker.evictions > 0 for t in stores)
            assert any(t.store.chunk_reads > 0 for t in stores)
        finally:
            daisy.close()

    def test_sqlite_pushdown_serves_queries(self):
        rel, dc = _dc_relation()
        daisy = Daisy(
            use_cost_model=False, storage="sqlite",
            memory_budget_mb=TIGHT_BUDGET_MB,
        )
        try:
            daisy.register_table("lineorder", rel)
            daisy.add_rule("lineorder", dc)
            with daisy.connect() as session:
                session.execute(
                    "SELECT orderkey FROM lineorder WHERE extended_price < 500.0"
                )
            stores = daisy.storage_manager.tables()
            assert any(
                t.sqlite is not None and t.sqlite.queries_served > 0
                for t in stores
            )
        finally:
            daisy.close()
