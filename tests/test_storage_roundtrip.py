"""Property suite: spill → mmap → read is byte-identical, always.

The stripe format's contract (``repro.storage.stripefile``): decoding a
stripe — in particular over a :class:`memoryview` of an ``mmap``-ed file —
reproduces the in-memory column **exactly** in the engine's value
semantics: same values (NaN, ±inf, and ``-0.0`` included), same Python
types (``int`` never becomes ``float``, ``bool`` and probabilistic cells
ride the pickle fallback), same null mask, and therefore the same sort
orders and filter answers the engine would derive from the column.

The suite also pins the *decline* branches (booleans, PValues, ints beyond
int64, mixed families, lone-surrogate strings → ``KIND_PICKLE``) and the
store-level epoch discipline: a patch rewrites only the touched chunks,
the new generation reads back the patched column, and a reader pinned to
the old generation gets a loud :class:`StaleGenerationError` instead of
silently time-travelled bytes.

Skips when hypothesis is unavailable (it is baked into CI images; the
deterministic store tests below the property section still run there via
their non-hypothesis twins in ``test_storage_parity.py``).
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.probabilistic.value import Candidate, PValue
from repro.storage.stripefile import (
    KIND_FLOAT64,
    KIND_INT64,
    KIND_PICKLE,
    KIND_STR,
    STRIPE_ROWS,
    StripeFormatError,
    decode_stripe,
    encode_stripe,
    infer_stripe_kind,
    stripe_kind,
)
from repro.storage.stripestore import StaleGenerationError, StripeStore

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def cell_key(v) -> tuple[str, str]:
    """Exact identity of one cell: type name + repr.

    ``repr`` separates ``1`` from ``1.0`` and ``True``, keeps ``-0.0``'s
    sign, and gives NaN a stable token (``nan != nan`` under ``==``).
    """
    return (type(v).__name__, repr(v))


def column_key(values) -> list[tuple[str, str]]:
    return [cell_key(v) for v in values]


def sort_key_positions(values) -> list[int]:
    """The engine's stable (value, position) sort order over the concrete
    comparable cells — the order a ColumnView sorted index would build."""
    pairs = [
        (v, pos)
        for pos, v in enumerate(values)
        if v is not None and not (isinstance(v, float) and math.isnan(v))
    ]
    try:
        pairs.sort()
    except TypeError:
        return []
    return [pos for _v, pos in pairs]


# -- strategies ----------------------------------------------------------------

ints64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
floats = st.floats(allow_nan=True, allow_infinity=True, width=64)
texts = st.text(max_size=40)

int_columns = st.lists(st.one_of(st.none(), ints64), max_size=300)
float_columns = st.lists(st.one_of(st.none(), floats), max_size=300)
str_columns = st.lists(st.one_of(st.none(), texts), max_size=300)

#: Cells from every family at once — mostly declining to pickle.
wild_cells = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: may exceed int64
    floats,
    texts,
    st.tuples(st.integers(), texts),
    st.builds(
        lambda v, p: PValue([Candidate(v, p), Candidate(v + 1, 1.0 - p)]),
        st.integers(min_value=-100, max_value=100),
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    ),
)
wild_columns = st.lists(wild_cells, max_size=120)


# -- stripe-blob round trips ---------------------------------------------------


class TestStripeRoundTrip:
    @_SETTINGS
    @given(int_columns)
    def test_int_columns_roundtrip_exactly(self, values):
        blob = encode_stripe(values)
        decoded = decode_stripe(blob)
        assert column_key(decoded) == column_key(values)
        if any(v is not None for v in values):
            assert stripe_kind(blob) == KIND_INT64

    @_SETTINGS
    @given(float_columns)
    def test_float_columns_roundtrip_exactly(self, values):
        """NaN, ±inf, and -0.0 survive with sign and payload semantics."""
        blob = encode_stripe(values)
        decoded = decode_stripe(blob)
        assert column_key(decoded) == column_key(values)
        if any(v is not None for v in values):
            assert stripe_kind(blob) == KIND_FLOAT64

    @_SETTINGS
    @given(str_columns)
    def test_str_columns_roundtrip_exactly(self, values):
        blob = encode_stripe(values)
        decoded = decode_stripe(blob)
        assert column_key(decoded) == column_key(values)

    @_SETTINGS
    @given(wild_columns)
    def test_any_column_roundtrips_exactly(self, values):
        """Whatever the kind inference decides, the values come back."""
        decoded = decode_stripe(encode_stripe(values))
        assert column_key(decoded) == column_key(values)

    @_SETTINGS
    @given(st.one_of(int_columns, float_columns, str_columns, wild_columns))
    def test_null_mask_and_sort_order_preserved(self, values):
        decoded = decode_stripe(encode_stripe(values))
        assert [v is None for v in decoded] == [v is None for v in values]
        assert sort_key_positions(decoded) == sort_key_positions(values)

    @_SETTINGS
    @given(st.one_of(int_columns, float_columns, str_columns, wild_columns))
    def test_mmap_decode_equals_bytes_decode(self, tmp_path_factory, values):
        """Decoding over a memory-mapped file equals decoding the bytes."""
        import mmap

        blob = encode_stripe(values)
        path = tmp_path_factory.mktemp("stripes") / "one.stripe"
        path.write_bytes(blob)
        with open(path, "rb") as handle:
            with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as m:
                decoded = decode_stripe(memoryview(m))
        assert column_key(decoded) == column_key(values)


class TestDeclineBranches:
    """The typed kinds decline exactly where the kernel inference does."""

    def test_booleans_decline(self):
        assert infer_stripe_kind([True, False]) == KIND_PICKLE
        assert column_key(decode_stripe(encode_stripe([True, None]))) == (
            column_key([True, None])
        )

    def test_pvalues_decline(self):
        pv = PValue([Candidate(1, 0.6), Candidate(2, 0.4)])
        values = [pv, 3, None]
        assert infer_stripe_kind(values) == KIND_PICKLE
        decoded = decode_stripe(encode_stripe(values))
        assert repr(decoded) == repr(values)

    def test_out_of_int64_declines(self):
        values = [2 ** 63, -(2 ** 63) - 1]
        assert infer_stripe_kind(values) == KIND_PICKLE
        assert decode_stripe(encode_stripe(values)) == values

    def test_mixed_families_decline(self):
        for values in ([1, 2.0], [1.0, "x"], [1, "x"]):
            assert infer_stripe_kind(values) == KIND_PICKLE
            assert column_key(decode_stripe(encode_stripe(values))) == (
                column_key(values)
            )

    def test_lone_surrogate_strings_decline_to_pickle(self):
        values = ["ok", "\ud800", None]
        blob = encode_stripe(values)
        assert stripe_kind(blob) == KIND_PICKLE
        assert decode_stripe(blob) == values

    def test_int_inside_int64_stays_typed(self):
        values = [2 ** 63 - 1, -(2 ** 63), 0, None]
        blob = encode_stripe(values)
        assert stripe_kind(blob) == KIND_INT64
        assert column_key(decode_stripe(blob)) == column_key(values)

    def test_all_none_column_declines(self):
        assert infer_stripe_kind([None, None]) == KIND_PICKLE
        assert decode_stripe(encode_stripe([None, None])) == [None, None]

    def test_kind_constants_cover_families(self):
        assert infer_stripe_kind([1, None]) == KIND_INT64
        assert infer_stripe_kind([1.5]) == KIND_FLOAT64
        assert infer_stripe_kind(["a"]) == KIND_STR

    def test_corrupt_blobs_raise_format_error(self):
        with pytest.raises(StripeFormatError):
            decode_stripe(b"")
        with pytest.raises(StripeFormatError):
            decode_stripe(b"XXXX" + b"\x00" * 20)
        good = encode_stripe([1, 2, 3])
        with pytest.raises(StripeFormatError):
            decode_stripe(b"DST1" + bytes([99]) + good[5:])


# -- store-level epoch parity --------------------------------------------------


@st.composite
def column_and_patch(draw):
    """A typed-or-not column plus a patch over some of its positions."""
    values = draw(
        st.one_of(int_columns, float_columns, str_columns, wild_columns).filter(
            lambda v: len(v) > 0
        )
    )
    n = len(values)
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=min(n, 10),
            unique=True,
        )
    )
    replacements = draw(
        st.lists(wild_cells, min_size=len(positions), max_size=len(positions))
    )
    return values, positions, replacements


class TestStoreEpochParity:
    @_SETTINGS
    @given(column_and_patch())
    def test_patch_then_reload_matches_patched_column(
        self, tmp_path_factory, data
    ):
        values, positions, replacements = data
        root = tmp_path_factory.mktemp("store")
        store = StripeStore(root, memory_budget_mb=0, chunk_rows=16)
        try:
            store.put_column("a", values)
            gen0 = store.generation("a")
            patched = list(values)
            for pos, cell in zip(positions, replacements):
                patched[pos] = cell
            store.rewrite_positions("a", patched, positions)
            gen1 = store.generation("a")
            assert gen1 > gen0
            reloaded = store.load_column("a", gen1)
            assert column_key(reloaded) == column_key(patched)
            with pytest.raises(StaleGenerationError):
                store.load_column("a", gen0)
        finally:
            store.close()

    def test_patch_rewrites_only_touched_chunks(self, tmp_path):
        store = StripeStore(tmp_path, memory_budget_mb=0, chunk_rows=8)
        try:
            values = list(range(40))  # 5 chunks of 8
            store.put_column("a", values)
            writes_before = store.chunk_writes
            patched = list(values)
            patched[3] = -1
            patched[5] = -2  # same chunk as position 3
            rewritten = store.rewrite_positions("a", patched, [3, 5])
            assert rewritten == 1
            assert store.chunk_writes == writes_before + 1
            assert store.load_column("a", store.generation("a")) == patched
        finally:
            store.close()

    def test_multichunk_column_survives_roundtrip(self, tmp_path):
        store = StripeStore(tmp_path, memory_budget_mb=0)
        try:
            n = STRIPE_ROWS * 2 + 17
            values = [float(i) if i % 7 else None for i in range(n)]
            store.put_column("a", values)
            out = store.load_column("a", store.generation("a"))
            assert column_key(out) == column_key(values)
        finally:
            store.close()
