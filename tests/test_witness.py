"""Runtime race witness: seeded-bug self-tests, pool survival, parity.

The seeded fixture (``tests/fixtures/seeded_race.py``) is loaded at
*collection* time under the module name ``seeded_race`` — before the
session-scoped witness fixture (``conftest.py``) activates under
``REPRO_TEST_DIAGNOSTICS=witness`` — so its classes are registered, and
therefore instrumented, in both plain and witness-mode runs.  Its name
deliberately evades the harness-frame exemption: the violations seeded
there must *fire*, proving the witness is not a no-op.

Every test that provokes a violation removes it from the global witness
afterwards, so the session-level "no violations" gate in ``conftest.py``
stays meaningful.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import threading
from pathlib import Path

import pytest

from repro import Daisy, DaisyConfig
from repro._ownership import OWNERSHIP_REGISTRY
from repro.datasets import hospital
from repro.diagnostics import RaceWitness, global_witness
from repro.parallel import fork_available

_FIXTURE = Path(__file__).resolve().parent / "fixtures" / "seeded_race.py"
_spec = importlib.util.spec_from_file_location("seeded_race", _FIXTURE)
assert _spec is not None and _spec.loader is not None
seeded_race = importlib.util.module_from_spec(_spec)
sys.modules["seeded_race"] = seeded_race
_spec.loader.exec_module(seeded_race)


class _Quarantine:
    """Activate the global witness; confiscate violations added inside."""

    def __init__(self) -> None:
        self.witness = global_witness()
        self.taken: list = []

    def __enter__(self) -> "_Quarantine":
        self._before = len(self.witness.violations)
        self.witness.activate()
        return self

    def __exit__(self, *exc) -> None:
        self.taken = self.witness.violations[self._before:]
        del self.witness.violations[self._before:]
        self.witness.deactivate()

    def kinds(self) -> list[str]:
        return [v.kind for v in self.taken]


class TestSeededBugs:
    """The dynamic half of the two-layer seeded-bug proof (static half:
    ``tests/test_daisylint_ownership.py``)."""

    def test_fixture_classes_are_registered(self):
        for cls in (
            seeded_race.SeededCursor,
            seeded_race.SeededFrozen,
            seeded_race.SeededScratch,
        ):
            assert cls in OWNERSHIP_REGISTRY

    def test_seam_violation_fires_on_rogue_write(self):
        with _Quarantine() as q:
            cursor = seeded_race.SeededCursor()
            cursor.advance()  # inside the declared seam: no violation
            seeded_race.rogue_write(cursor)
        assert q.kinds() == ["seam-violation"]
        violation = q.taken[0]
        assert "SeededCursor.position" in violation.reason
        assert violation.event.site.endswith("seeded_race.rogue_write")

    def test_immutable_write_fires_on_corrupt(self):
        with _Quarantine() as q:
            frozen = seeded_race.SeededFrozen(7)
            seeded_race.corrupt(frozen)
        assert q.kinds() == ["immutable-write"]
        assert "SeededFrozen.value" in q.taken[0].reason

    def test_cross_thread_write_fires_on_shared_scratch(self):
        with _Quarantine() as q:
            scratch = seeded_race.SeededScratch()
            seeded_race.touch(scratch)  # main thread becomes the owner
            worker = threading.Thread(
                target=seeded_race.touch, args=(scratch,), name="intruder"
            )
            worker.start()
            worker.join()
        assert q.kinds() == ["cross-thread-write"]
        assert "intruder" in q.taken[0].reason

    def test_single_thread_scratch_is_clean(self):
        with _Quarantine() as q:
            scratch = seeded_race.SeededScratch()
            for _ in range(5):
                seeded_race.touch(scratch)
        assert q.kinds() == []


class TestHarnessExemption:
    def test_direct_write_from_test_frame_is_recorded_not_flagged(self):
        with _Quarantine() as q:
            witness = q.witness
            before_events = len(witness.events)
            cursor = seeded_race.SeededCursor()
            # This module's leaf name matches ``test_*``: the write is
            # harness-frame and must not escalate.
            cursor.position = 123
            recorded = witness.events[before_events:]
        assert q.kinds() == []
        assert any(
            e.attr == "position" and e.phase == "post-init" for e in recorded
        )


class TestInstrumentationLifecycle:
    def test_activate_wraps_and_deactivate_restores(self):
        cls = seeded_race.SeededCursor
        before_set = cls.__dict__.get("__setattr__")
        local = RaceWitness()
        local.activate()
        try:
            assert cls.__dict__.get("__setattr__") is not before_set
        finally:
            local.deactivate()
        assert cls.__dict__.get("__setattr__") is before_set

    def test_activation_is_reference_counted(self):
        local = RaceWitness()
        local.activate()
        local.activate()
        local.deactivate()
        assert local.active
        local.deactivate()
        assert not local.active

    def test_construction_writes_are_init_phase(self):
        with _Quarantine() as q:
            witness = q.witness
            before = len(witness.events)
            seeded_race.SeededFrozen(1)
            phases = [
                e.phase for e in witness.events[before:]
                if e.cls == "SeededFrozen"
            ]
        assert phases == ["init"]
        assert q.kinds() == []

    def test_report_written_on_final_deactivate(self, tmp_path, monkeypatch):
        report_path = tmp_path / "witness.json"
        monkeypatch.setenv("REPRO_WITNESS_REPORT", str(report_path))
        local = RaceWitness()
        local.activate()
        seeded_race.rogue_write(seeded_race.SeededCursor())
        local.deactivate()
        report = json.loads(report_path.read_text())
        assert report["events"] >= 2
        assert "SeededCursor" in report["writes_per_class"]
        assert any(
            v["kind"] == "seam-violation" for v in report["violations"]
        )
        # The global witness (if the suite runs in witness mode) saw the
        # same rogue write: confiscate it so the session gate stays clean.
        g = global_witness()
        g.violations[:] = [
            v for v in g.violations
            if not v.event.site.endswith("seeded_race.rogue_write")
        ]


class TestConfigPlumbing:
    def test_default_is_none(self):
        assert DaisyConfig().diagnostics == "none"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="diagnostics"):
            DaisyConfig(diagnostics="telemetry")

    def test_daisy_kwarg_activates_and_close_deactivates(self):
        witness = global_witness()
        before = witness._activations
        daisy = Daisy(use_cost_model=False, diagnostics="witness")
        assert witness._activations == before + 1
        daisy.close()
        assert witness._activations == before


def _workload(**config_kwargs):
    daisy = Daisy(
        config=DaisyConfig(use_cost_model=False, **config_kwargs)
    )
    try:
        fresh = hospital.generate_instance(num_rows=120, seed=23)
        daisy.register_table("hospital", fresh.dirty)
        for fd in fresh.rules:
            daisy.add_rule("hospital", fd)
        with daisy.connect() as session:
            rows = [
                session.execute(q).relation.to_plain_rows()
                for q in (
                    "SELECT zip FROM hospital WHERE city = 'City001'",
                    "SELECT city FROM hospital WHERE zip = 10003",
                    "SELECT phone FROM hospital WHERE zip >= 10000 AND zip < 10004",
                )
            ]
        return {
            "rows": rows,
            "relation": [
                (row.tid, tuple(repr(c) for c in row.values))
                for row in daisy.table("hospital").rows
            ],
            "work": daisy.work_counter("hospital").as_dict(),
        }
    finally:
        daisy.close()


class TestWitnessedParity:
    """diagnostics="witness" must be observation only: byte-identical
    results, zero violations from real engine code."""

    def test_serial_witnessed_run_is_byte_identical(self):
        witness = global_witness()
        before = len(witness.violations)
        plain = _workload()
        witnessed = _workload(diagnostics="witness")
        assert witnessed == plain
        assert witness.violations[before:] == []

    def test_thread_pool_witnessed_run_is_byte_identical(self):
        witness = global_witness()
        before = len(witness.violations)
        plain = _workload(parallelism=2, pool="thread", num_shards=4)
        witnessed = _workload(
            parallelism=2, pool="thread", num_shards=4, diagnostics="witness"
        )
        assert witnessed == plain
        assert witness.violations[before:] == []

    @pytest.mark.skipif(not fork_available(), reason="no fork on this platform")
    def test_fork_pool_witnessed_run_is_byte_identical(self):
        """The witness must survive fork-process pools: children inherit
        the instrumentation copy-on-write; their private writes are
        recorded at most, never escalated, and the merged results stay
        byte-identical to the unwitnessed run."""
        witness = global_witness()
        before = len(witness.violations)
        plain = _workload(parallelism=2, pool="process")
        witnessed = _workload(parallelism=2, pool="process", diagnostics="witness")
        assert witnessed == plain
        assert witness.violations[before:] == []
