"""Tests for possible-world enumeration and lineage joins."""

import math

import pytest

from repro.probabilistic import (
    Candidate,
    PValue,
    enumerate_worlds,
    incremental_join_update,
    join_with_lineage,
    world_count,
)
from repro.relation import ColumnType, Relation


class TestWorldEnumeration:
    def test_concrete_relation_single_world(self):
        rel = Relation.from_rows([("a", ColumnType.INT)], [(1,), (2,)])
        worlds = enumerate_worlds(rel)
        assert len(worlds) == 1
        assert math.isclose(worlds[0].probability, 1.0)

    def test_independent_candidates_multiply(self):
        rel = Relation.from_rows([("a", ColumnType.INT)], [(1,), (2,)])
        pv = PValue([Candidate(1, 0.5), Candidate(9, 0.5)])
        rel = rel.update_cells({(0, "a"): pv, (1, "a"): pv})
        worlds = enumerate_worlds(rel)
        assert len(worlds) == 4
        assert math.isclose(sum(w.probability for w in worlds), 1.0)

    def test_world_linked_cells_chosen_jointly(self):
        # Two cells of one row linked by world ids: world 1 fixes the rhs,
        # world 2 the lhs — instantiations never mix worlds.
        rel = Relation.from_rows(
            [("zip", ColumnType.INT), ("city", ColumnType.STRING)], [(0, "x")]
        )
        zip_pv = PValue([Candidate(9001, 0.5, world=1), Candidate(10001, 0.5, world=2)])
        city_pv = PValue([Candidate("LA", 0.5, world=1), Candidate("SF", 0.5, world=2)])
        rel = rel.update_cells({(0, "zip"): zip_pv, (0, "city"): city_pv})
        worlds = enumerate_worlds(rel)
        combos = {(w.relation.rows[0].values[0], w.relation.rows[0].values[1]) for w in worlds}
        assert combos == {(9001, "LA"), (10001, "SF")}

    def test_world_count_matches_enumeration(self):
        rel = Relation.from_rows([("a", ColumnType.INT)], [(1,), (2,)])
        pv = PValue([Candidate(1, 0.5), Candidate(9, 0.5)])
        rel = rel.update_cells({(0, "a"): pv})
        assert world_count(rel) == len(enumerate_worlds(rel))

    def test_limit_enforced(self):
        rel = Relation.from_rows([("a", ColumnType.INT)], [(i,) for i in range(20)])
        pv = PValue([Candidate(1, 0.5), Candidate(2, 0.5)])
        rel = rel.update_cells({(i, "a"): pv for i in range(20)})
        with pytest.raises(ValueError):
            enumerate_worlds(rel, limit=100)

    def test_probabilities_sum_to_one(self):
        rel = Relation.from_rows([("a", ColumnType.INT)], [(1,)])
        pv = PValue([Candidate(1, 0.6), Candidate(2, 0.3), Candidate(3, 0.1)])
        rel = rel.update_cells({(0, "a"): pv})
        worlds = enumerate_worlds(rel)
        assert math.isclose(sum(w.probability for w in worlds), 1.0)


class TestLineageJoin:
    def test_pairs_recorded(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,), (2,)], name="L")
        right = Relation.from_rows([("k", ColumnType.INT)], [(2,), (2,)], name="R")
        jr = join_with_lineage(left, right, "k", "k")
        assert set(jr.lineage.pairs.values()) == {(1, 0), (1, 1)}
        assert jr.lineage.left_tids() == {1}
        assert jr.lineage.right_tids() == {0, 1}

    def test_prefixed_schema(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,)], name="L")
        right = Relation.from_rows([("k", ColumnType.INT)], [(1,)], name="R")
        jr = join_with_lineage(left, right, "k", "k")
        assert jr.relation.schema.names == ("L.k", "R.k")

    def test_outputs_of(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,)], name="L")
        right = Relation.from_rows([("k", ColumnType.INT)], [(1,), (1,)], name="R")
        jr = join_with_lineage(left, right, "k", "k")
        assert jr.lineage.outputs_of_left(0) == {0, 1}

    def test_incremental_update_adds_only_new_pairs(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,), (2,)], name="L")
        right = Relation.from_rows([("k", ColumnType.INT)], [(1,), (2,)], name="R")
        jr = join_with_lineage(
            left.restrict_tids({0}), right, "k", "k", "L", "R"
        )
        assert len(jr.relation) == 1
        updated = incremental_join_update(jr, left, right, {1}, set())
        assert set(updated.lineage.pairs.values()) == {(0, 0), (1, 1)}

    def test_incremental_update_idempotent(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(1,)], name="L")
        right = Relation.from_rows([("k", ColumnType.INT)], [(1,)], name="R")
        jr = join_with_lineage(left, right, "k", "k", "L", "R")
        updated = incremental_join_update(jr, left, right, {0}, {0})
        assert len(updated.relation) == 1

    def test_probabilistic_key_join(self):
        left = Relation.from_rows([("k", ColumnType.INT)], [(5,)], name="L")
        pv = PValue([Candidate(5, 0.5), Candidate(6, 0.5)])
        right = Relation.from_rows([("k", ColumnType.INT)], [(0,)], name="R")
        right = right.update_cells({(0, "k"): pv})
        jr = join_with_lineage(left, right, "k", "k")
        assert len(jr.relation) == 1
