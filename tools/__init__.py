"""Repository tooling (not shipped with the ``repro`` package).

Currently one tool lives here: :mod:`tools.daisylint`, the AST
invariant-lint suite described in ``docs/static-analysis.md``.
"""
