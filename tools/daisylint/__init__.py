"""daisylint: AST invariant lints + baseline gate for the Daisy engine.

Usage::

    python -m tools.daisylint src                # lint, gate on baseline
    python -m tools.daisylint --list-rules       # rule catalog
    python -m tools.daisylint --write-baseline   # regenerate baseline

Rule catalog and policy live in ``docs/static-analysis.md``.  Importing
this package registers the full rule suite.
"""

from tools.daisylint import rules as _rules  # noqa: F401  (registers rules)
from tools.daisylint import ownership_rules as _ownership  # noqa: F401  (DL1xx)
from tools.daisylint.core import (
    Baseline,
    Finding,
    ModuleInfo,
    ProjectRule,
    Rule,
    RULES,
    RunResult,
    fingerprint_findings,
    iter_rules,
    lint_module,
    register,
    run,
)
from tools.daisylint.cache import FileCache
from tools.daisylint.project import ModuleSummary, ProjectModel, summarize_module
from tools.daisylint.cli import main

__all__ = [
    "Baseline",
    "FileCache",
    "Finding",
    "ModuleInfo",
    "ModuleSummary",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "RULES",
    "RunResult",
    "fingerprint_findings",
    "iter_rules",
    "lint_module",
    "main",
    "register",
    "run",
    "summarize_module",
]
