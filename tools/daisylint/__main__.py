"""Entry point for ``python -m tools.daisylint``."""

import sys

from tools.daisylint.cli import main

sys.exit(main())
