"""daisylint result cache: skip re-analysis of unchanged files.

One JSON file keyed by repo-relative path.  A cache entry stores the
file's mtime/size (fast path) and content hash (slow path, survives
``touch``), plus the full analysis payload — the file-scope findings
*and* the :class:`ModuleSummary` the project rules consume, so a fully
cached run still rebuilds the whole-program model without parsing a
single file.

The cache is keyed on a *tool token* — a hash over the daisylint package
sources themselves — so editing any rule invalidates every entry.  Stale
caches can therefore never mask a new rule or a fixed bug in an old one.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

_PACKAGE_DIR = Path(__file__).resolve().parent
DEFAULT_CACHE = _PACKAGE_DIR / ".cache" / "results.json"
_VERSION = 1


def tool_token() -> str:
    """Hash of the daisylint sources: rule edits invalidate the cache."""
    digest = hashlib.sha256()
    for source in sorted(_PACKAGE_DIR.glob("*.py")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()[:16]


def _content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


class FileCache:
    """mtime/content-hash keyed store of per-file analysis payloads."""

    def __init__(self, path: Path, token: str, files: dict[str, dict] | None = None):
        self.path = path
        self.token = token
        self.files: dict[str, dict] = dict(files or {})
        self.hits = 0
        self.misses = 0
        self._dirty = False

    @classmethod
    def load(cls, path: Path | None = None) -> "FileCache":
        path = path or DEFAULT_CACHE
        token = tool_token()
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return cls(path, token)
        if data.get("version") != _VERSION or data.get("token") != token:
            # Tool or format changed: every entry is suspect.
            return cls(path, token)
        return cls(path, token, data.get("files", {}))

    def get(self, path: Path, relpath: str) -> dict | None:
        """The cached payload for an unchanged file, else None."""
        entry = self.files.get(relpath)
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = path.stat()
        except OSError:
            self.misses += 1
            return None
        if stat.st_mtime == entry["mtime"] and stat.st_size == entry["size"]:
            self.hits += 1
            return entry["payload"]
        try:
            digest = _content_hash(path.read_bytes())
        except OSError:
            self.misses += 1
            return None
        if digest == entry["hash"]:
            # Touched but not changed: refresh the fast-path key.
            entry["mtime"] = stat.st_mtime
            entry["size"] = stat.st_size
            self._dirty = True
            self.hits += 1
            return entry["payload"]
        self.misses += 1
        return None

    def put(self, path: Path, relpath: str, payload: dict) -> None:
        try:
            stat = path.stat()
            digest = _content_hash(path.read_bytes())
        except OSError:
            return
        self.files[relpath] = {
            "mtime": stat.st_mtime,
            "size": stat.st_size,
            "hash": digest,
            "payload": payload,
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps({
            "version": _VERSION,
            "token": self.token,
            "files": self.files,
        }))
        self._dirty = False


__all__ = ["FileCache", "DEFAULT_CACHE", "tool_token"]
