"""daisylint command line: ``python -m tools.daisylint [paths…]``.

Exit codes: 0 — clean (modulo the baseline); 1 — new findings; 2 — usage
or parse error.  ``--write-baseline`` regenerates the grandfathered-
findings ledger (refusing DL001/DL002 entries); ``--json-output`` writes
the machine-readable report CI uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from tools.daisylint.cache import DEFAULT_CACHE as DEFAULT_CACHE_FILE
from tools.daisylint.cache import FileCache
from tools.daisylint.core import Baseline, RunResult, iter_rules, run

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="daisylint",
        description="AST invariant lints for the Daisy engine core "
        "(see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="baseline JSON of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from the current findings and exit 0 "
        "(DL001/DL002 findings are rejected — fix those)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--json-output", default=None, metavar="FILE",
        help="also write the JSON findings report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="analyze files over N worker processes (default: 1, inline)",
    )
    parser.add_argument(
        "--cache", nargs="?", const=str(DEFAULT_CACHE_FILE), default=None,
        metavar="FILE",
        help="reuse per-file results for unchanged files "
        f"(default cache: {DEFAULT_CACHE_FILE})",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail (and prune the baseline file) if any baseline entry is "
        "stale — its finding no longer fires",
    )
    parser.add_argument(
        "--dump-project", default=None, metavar="FILE",
        help="write the whole-program attribute-mutation map to FILE "
        "(the ownership-annotation authoring aid)",
    )
    return parser


def _print_text(result: RunResult, stream) -> None:
    for _digest, finding in result.new:
        print(finding.render(), file=stream)
    summary = (
        f"daisylint: {result.files_checked} files, "
        f"{len(result.new)} new finding(s), "
        f"{len(result.matched)} baselined"
    )
    if result.stale:
        summary += f", {len(result.stale)} stale baseline entry(ies)"
    print(summary, file=stream)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return 0

    root = Path(args.root).resolve()
    baseline_path = Path(args.baseline)
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)

    errors: list[str] = []

    def on_error(path: Path, exc: Exception) -> None:
        errors.append(f"daisylint: cannot lint {path}: {exc}")

    cache = FileCache.load(Path(args.cache)) if args.cache else None
    result = run(
        [Path(p) for p in args.paths], root, baseline=baseline,
        on_error=on_error, jobs=max(1, args.jobs), cache=cache,
    )
    for line in errors:
        print(line, file=sys.stderr)

    if args.dump_project and result.project is not None:
        Path(args.dump_project).write_text(
            json.dumps(result.project.mutation_report(), indent=2) + "\n"
        )

    if args.write_baseline:
        from tools.daisylint.core import fingerprint_findings

        try:
            new_baseline = Baseline.from_findings(fingerprint_findings(result.findings))
        except ValueError as exc:
            print(f"daisylint: {exc}", file=sys.stderr)
            return 2
        new_baseline.save(baseline_path)
        print(
            f"daisylint: wrote {len(new_baseline.entries)} baseline entries "
            f"to {baseline_path}"
        )
        return 0

    if args.json_output:
        Path(args.json_output).write_text(
            json.dumps(result.to_json(), indent=2) + "\n"
        )

    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2))
    else:
        _print_text(result, sys.stdout)

    if args.check_baseline and result.stale:
        # Stale entries mean the baseline over-grants: the finding they
        # grandfathered no longer fires.  Prune them (locally this fixes
        # the file; in CI the failure flags the un-committed prune).
        for digest in result.stale:
            baseline.entries.pop(digest, None)
        if not args.no_baseline:
            baseline.save(baseline_path)
        print(
            f"daisylint: pruned {len(result.stale)} stale baseline "
            f"entry(ies) from {baseline_path}; commit the updated baseline",
            file=sys.stderr,
        )
        return 1

    if errors:
        return 2
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
