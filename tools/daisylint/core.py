"""daisylint core: findings, the rule registry, suppression, baseline.

The framework is deliberately small — one AST parse per file, one linear
pass per rule — so the whole suite stays fast enough to run on every
commit.  The moving parts:

* :class:`Finding` — one diagnostic, with a *fingerprint* that is stable
  under line-number drift (it hashes the stripped source line, not the
  line number), so baseline entries survive unrelated edits.
* :class:`Rule` + :func:`register` — the registry.  Rules carry a stable
  ``code`` (``DL001``…), declare which repo paths they apply to via
  :meth:`Rule.applies`, and yield findings from :meth:`Rule.check`.
* :class:`ModuleInfo` — the per-file bundle every rule receives: source
  text, AST with parent links, and the suppression table parsed from
  ``# daisylint: disable=CODE`` comments.
* :class:`Baseline` — the checked-in ledger of grandfathered findings
  (``tools/daisylint/baseline.json``).  A run fails only on findings
  *not* in the baseline; baseline entries that no longer fire are
  reported as stale so the burn-down stays honest.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Codes whose findings may never be grandfathered: determinism (DL001)
#: and fork-safety (DL002) regressions must be fixed, not baselined.
NEVER_BASELINE = ("DL001", "DL002")

_DISABLE_RE = re.compile(r"daisylint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    code: str
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str
    source_line: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent).

        Two findings on identical source lines in the same file get
        distinct fingerprints via the occurrence index appended by
        :func:`fingerprint_findings`; this property is the raw prefix.
        """
        return f"{self.path}::{self.code}::{self.source_line.strip()}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line.strip(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Finding":
        return cls(
            code=data["code"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            source_line=data.get("source_line", ""),
        )


def fingerprint_findings(findings: Iterable[Finding]) -> list[tuple[str, Finding]]:
    """Pair each finding with its occurrence-disambiguated fingerprint.

    Findings sharing (path, code, stripped line) are numbered in line
    order, so a file with two identical offending lines keeps two distinct
    baseline entries.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.code, f.line, f.col))
    seen: dict[str, int] = {}
    out: list[tuple[str, Finding]] = []
    for finding in ordered:
        raw = finding.fingerprint
        n = seen.get(raw, 0)
        seen[raw] = n + 1
        digest = hashlib.sha256(f"{raw}::{n}".encode()).hexdigest()[:16]
        out.append((digest, finding))
    return out


@dataclass
class ModuleInfo:
    """Everything a rule needs about one source file."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    #: line number -> set of codes disabled on that line ("all" disables every rule)
    suppressions: dict[int, set[str]]
    lines: list[str] = field(default_factory=list)
    _parents: dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, relpath: str, text: str) -> "ModuleInfo":
        tree = ast.parse(text, filename=str(path))
        info = cls(
            path=path,
            relpath=relpath,
            text=text,
            tree=tree,
            suppressions=_scan_suppressions(text),
            lines=text.splitlines(),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                info._parents[id(child)] = parent
        return info

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self, code: str, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            code=code,
            path=self.relpath,
            line=lineno,
            col=col,
            message=message,
            source_line=self.source_line(lineno),
        )

    def suppressed(self, finding: Finding) -> bool:
        codes = self.suppressions.get(finding.line, set())
        return finding.code in codes or "all" in codes


def _scan_suppressions(text: str) -> dict[int, set[str]]:
    """Parse ``# daisylint: disable=CODE[,CODE]`` comments, per line.

    Uses the tokenizer (not a regex over raw lines) so string literals
    that merely *mention* the marker never suppress anything.
    """
    table: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(tok.string)
            if not match:
                continue
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            table.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:  # pragma: no cover - unparsable files fail earlier
        pass
    return table


class Rule:
    """Base class: subclass, set ``code``/``name``/``rationale``, register.

    ``check`` yields findings for one module; ``applies`` gates which
    repo-relative paths the rule runs on (default: every file).  File
    rules (``scope = "file"``) see one module at a time; project rules
    (:class:`ProjectRule`) run once over the merged whole-program model.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    scope: str = "file"

    def applies(self, relpath: str) -> bool:
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


class ProjectRule(Rule):
    """A rule over the merged :class:`tools.daisylint.project.ProjectModel`.

    Project rules never run per file — :func:`run` invokes
    :meth:`check_project` once after every module summary is collected.
    Suppression comments still apply: findings are filtered against the
    summary's suppression table by line, exactly like file findings.
    """

    scope = "project"

    def applies(self, relpath: str) -> bool:
        return False

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


#: The registry: code -> rule instance, populated by :func:`register`.
RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the registry (codes must be unique)."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def iter_rules() -> list[Rule]:
    return [RULES[code] for code in sorted(RULES)]


class Baseline:
    """The checked-in ledger of grandfathered findings.

    Format (``baseline.json``)::

        {"version": 1,
         "entries": {"<fingerprint>": {"code": ..., "path": ..., "message": ...}}}

    Entries exist so *pre-existing* cosmetic findings do not block CI
    while they are burned down; codes in :data:`NEVER_BASELINE` are
    rejected at write time.
    """

    def __init__(self, entries: dict[str, dict] | None = None):
        self.entries: dict[str, dict] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        return cls(data.get("entries", {}))

    def save(self, path: Path) -> None:
        payload = {"version": 1, "entries": dict(sorted(self.entries.items()))}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    @classmethod
    def from_findings(cls, pairs: Iterable[tuple[str, Finding]]) -> "Baseline":
        entries: dict[str, dict] = {}
        for digest, finding in pairs:
            if finding.code in NEVER_BASELINE:
                raise ValueError(
                    f"{finding.code} findings must be fixed, not baselined: "
                    f"{finding.render()}"
                )
            entries[digest] = finding.to_json()
        return cls(entries)


@dataclass
class RunResult:
    """Outcome of linting a set of paths against a baseline."""

    findings: list[Finding]
    new: list[tuple[str, Finding]]
    matched: list[tuple[str, Finding]]
    stale: list[str]
    files_checked: int
    #: The merged whole-program model (when project analysis ran).
    project: object | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_json(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "total_findings": len(self.findings),
            "new": [f.to_json() | {"fingerprint": d} for d, f in self.new],
            "baseline_matched": len(self.matched),
            "stale_baseline_entries": sorted(self.stale),
            "rules": {
                rule.code: {"name": rule.name, "rationale": rule.rationale}
                for rule in iter_rules()
            },
        }


def lint_module(module: ModuleInfo, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Run every applicable file rule on one parsed module, minus suppressions."""
    out: list[Finding] = []
    for rule in rules if rules is not None else iter_rules():
        if rule.scope != "file" or not rule.applies(module.relpath):
            continue
        for finding in rule.check(module):
            if not module.suppressed(finding):
                out.append(finding)
    out.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return out


def analyze_path(path_str: str, relpath: str) -> dict:
    """Fully analyze one file into a serializable payload.

    The payload — file-scope findings plus the module summary the project
    rules consume — is what ``--jobs`` worker processes return and what
    the result cache stores, so one format serves both.
    """
    from tools.daisylint.project import summarize_module

    path = Path(path_str)
    text = path.read_text()
    module = ModuleInfo.parse(path, relpath, text)
    findings = lint_module(module)
    summary = summarize_module(
        module.tree, relpath, text, suppressions=module.suppressions
    )
    return {
        "relpath": relpath,
        "findings": [f.to_json() | {"line": f.line, "col": f.col,
                                    "source_line": f.source_line} for f in findings],
        "summary": summary.to_json(),
    }


def iter_python_files(targets: Iterable[Path], root: Path) -> Iterator[tuple[Path, str]]:
    """Yield (path, repo-relative posix path) for every target .py file."""
    for target in targets:
        target = target if target.is_absolute() else root / target
        if target.is_dir():
            files = sorted(p for p in target.rglob("*.py") if "__pycache__" not in p.parts)
        else:
            files = [target]
        for path in files:
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            yield path, rel


def _collect_payloads(
    files: list[tuple[Path, str]],
    jobs: int,
    cache,
    on_error: Callable[[Path, Exception], None] | None,
) -> list[dict]:
    """Analysis payloads for every file: cache hits, then (parallel) misses."""
    payloads: dict[str, dict] = {}
    misses: list[tuple[Path, str]] = []
    for path, rel in files:
        hit = cache.get(path, rel) if cache is not None else None
        if hit is not None:
            payloads[rel] = hit
        else:
            misses.append((path, rel))

    def handle_error(path: Path, exc: Exception) -> None:
        if on_error is None:
            raise exc
        on_error(path, exc)

    if jobs > 1 and len(misses) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                rel: pool.submit(analyze_path, str(path), rel)
                for path, rel in misses
            }
            for path, rel in misses:
                try:
                    payload = futures[rel].result()
                except (OSError, SyntaxError, ValueError) as exc:
                    handle_error(path, exc)
                    continue
                payloads[rel] = payload
                if cache is not None:
                    cache.put(path, rel, payload)
    else:
        for path, rel in misses:
            try:
                payload = analyze_path(str(path), rel)
            except (OSError, SyntaxError, ValueError) as exc:
                handle_error(path, exc)
                continue
            payloads[rel] = payload
            if cache is not None:
                cache.put(path, rel, payload)

    if cache is not None:
        cache.save()
    return [payloads[rel] for _path, rel in files if rel in payloads]


def run(
    targets: Iterable[Path],
    root: Path,
    baseline: Baseline | None = None,
    rules: Iterable[Rule] | None = None,
    on_error: Callable[[Path, Exception], None] | None = None,
    jobs: int = 1,
    cache=None,
    project: bool = True,
) -> RunResult:
    """Lint ``targets`` (files or directories) relative to repo ``root``.

    ``jobs`` > 1 fans per-file analysis out over a process pool; ``cache``
    (a :class:`tools.daisylint.cache.FileCache`) skips unchanged files.
    Both paths produce identical payloads, so results are byte-identical
    regardless of parallelism or cache state.  With ``project`` enabled
    (the default), the whole-program model is built from the collected
    module summaries and every registered :class:`ProjectRule` runs over
    it; ``rules`` (when given) filters project rules the same way it
    filters file rules — note explicit ``rules`` bypass the cache, whose
    payloads always reflect the full registry.
    """
    from tools.daisylint.project import ModuleSummary, ProjectModel

    baseline = baseline or Baseline()
    files = list(iter_python_files(targets, root))

    findings: list[Finding] = []
    summaries: list[ModuleSummary] = []
    if rules is None:
        payloads = _collect_payloads(files, jobs, cache, on_error)
        files_checked = len(payloads)
        for payload in payloads:
            findings.extend(Finding.from_json(f) for f in payload["findings"])
            summaries.append(ModuleSummary.from_json(payload["summary"]))
        active_rules: list[Rule] = iter_rules()
    else:
        # Explicit rule subsets (tests, focused runs): analyze inline.
        from tools.daisylint.project import summarize_module

        active_rules = list(rules)
        files_checked = 0
        for path, rel in files:
            try:
                module = ModuleInfo.parse(path, rel, path.read_text())
            except (OSError, SyntaxError, ValueError) as exc:
                if on_error is None:
                    raise
                on_error(path, exc)
                continue
            files_checked += 1
            findings.extend(lint_module(module, rules=active_rules))
            summaries.append(summarize_module(
                module.tree, rel, module.text, suppressions=module.suppressions
            ))

    if project:
        model = ProjectModel(summaries)
        by_relpath = {s.relpath: s for s in summaries}
        for rule in active_rules:
            if rule.scope != "project":
                continue
            for finding in rule.check_project(model):
                summary = by_relpath.get(finding.path)
                if summary is not None and summary.suppressed(
                    finding.code, finding.line
                ):
                    continue
                findings.append(finding)
    else:
        model = None

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    pairs = fingerprint_findings(findings)
    new = [(d, f) for d, f in pairs if d not in baseline.entries]
    matched = [(d, f) for d, f in pairs if d in baseline.entries]
    fired = {d for d, _ in pairs}
    stale = [d for d in baseline.entries if d not in fired]
    return RunResult(
        findings=findings,
        new=new,
        matched=matched,
        stale=stale,
        files_checked=files_checked,
        project=model,
    )
