"""DL100-series rules: ownership & shared-state concurrency analysis.

These are *project* rules: they run over the merged :class:`ProjectModel`
(symbol table + attribute-mutation map + Session reachability), not over
a single file's AST.  They enforce the ownership contract declared with
``repro/core/ownership.py``'s annotations — the same contract the runtime
race witness (``repro/diagnostics/witness.py``) validates dynamically:

* DL101 — a ``@shared_engine_state`` attribute is mutated outside its
  declared ``MUTATED_UNDER`` seam (or has no seam declaration at all).
* DL102 — an ``@immutable_after_init`` object is written after
  construction (``__init__`` / ``__post_init__`` / declared builders).
* DL103 — an engine class reachable from ``Session`` mutates its own
  state but carries no ownership annotation: nobody has said whether it
  is shared, session-owned, or frozen.
* DL104 — class-level mutable defaults / module-level mutable state in
  engine packages: one object shared by every instance and every session.
"""

from __future__ import annotations

from typing import Iterator

from tools.daisylint.core import Finding, ProjectRule, register
from tools.daisylint.project import (
    ProjectModel,
    ResolvedMutation,
    site_candidates,
    site_in_seams,
)
from tools.daisylint.rules import ENGINE_PREFIX


def _mutation_finding(code: str, mutation: ResolvedMutation, message: str) -> Finding:
    record = mutation.record
    return Finding(
        code=code,
        path=record.relpath,
        line=record.line,
        col=record.col,
        message=message,
        source_line=record.source_line,
    )


def _chain_class_names(project: ProjectModel, key: str) -> tuple[str, ...]:
    return tuple(
        project.class_summary(candidate).name
        for candidate in project.base_chain(key)
    )


def _site_is_construction(
    site: str, init_methods: tuple[str, ...], class_names: tuple[str, ...]
) -> bool:
    """Construction sites of the class (or a subclass in its chain)."""
    for candidate in site_candidates(site):
        leaf = candidate.rsplit(".", 1)[-1]
        if leaf not in init_methods:
            continue
        padded = f".{candidate}."
        if any(f".{name}." in padded for name in class_names):
            return True
    return False


@register
class SharedStateSeamRule(ProjectRule):
    code = "DL101"
    name = "shared-state-mutation-outside-seam"
    rationale = (
        "@shared_engine_state objects are reached by every session; a write "
        "outside the declared MUTATED_UNDER seam bypasses the single-writer "
        "discipline the service tier relies on."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for mutation in project.mutations:
            ownership = project.ownership_of(mutation.cls_key)
            if ownership is None or ownership[0] != "shared_engine_state":
                continue
            kind, declaring = ownership
            cls = project.class_summary(mutation.cls_key)
            init_methods = tuple(
                dict.fromkeys(cls.init_methods + declaring.init_methods)
            )
            class_names = _chain_class_names(project, mutation.cls_key)
            site = mutation.record.site
            if _site_is_construction(site, init_methods, class_names):
                continue
            seams = declaring.mutated_under.get(mutation.attr)
            if seams is None:
                yield _mutation_finding(
                    self.code, mutation,
                    f"shared_engine_state attribute "
                    f"'{declaring.name}.{mutation.attr}' is mutated at {site} "
                    f"but has no MUTATED_UNDER seam declaration",
                )
                continue
            if not site_in_seams(site, seams, init_methods, declaring.name):
                declared = ", ".join(seams) or "<nothing>"
                yield _mutation_finding(
                    self.code, mutation,
                    f"shared_engine_state attribute "
                    f"'{declaring.name}.{mutation.attr}' is mutated at {site}, "
                    f"outside its declared seam ({declared})",
                )


@register
class ImmutableAfterInitRule(ProjectRule):
    code = "DL102"
    name = "immutable-object-written-after-init"
    rationale = (
        "@immutable_after_init objects are shared freely because they never "
        "change; a post-construction write silently breaks every reader."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for mutation in project.mutations:
            ownership = project.ownership_of(mutation.cls_key)
            if ownership is None or ownership[0] != "immutable_after_init":
                continue
            kind, declaring = ownership
            cls = project.class_summary(mutation.cls_key)
            init_methods = tuple(
                dict.fromkeys(cls.init_methods + declaring.init_methods)
            )
            class_names = _chain_class_names(project, mutation.cls_key)
            site = mutation.record.site
            if _site_is_construction(site, init_methods, class_names):
                continue
            yield _mutation_finding(
                self.code, mutation,
                f"immutable_after_init class '{declaring.name}' attribute "
                f"'{mutation.attr}' is written after construction at {site}",
            )


@register
class UnannotatedSharedClassRule(ProjectRule):
    code = "DL103"
    name = "session-reachable-class-without-ownership"
    rationale = (
        "every mutable engine class a Session can reach must declare whether "
        "it is shared across sessions, session-owned, or frozen — otherwise "
        "the concurrency contract exists only in reviewers' heads."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for key in sorted(project.session_reachable()):
            summary, cls = project.classes[key]
            if not summary.relpath.startswith(ENGINE_PREFIX):
                continue
            if project.ownership_of(key) is not None:
                continue
            if not project.post_init_mutations(key):
                # Classes that never mutate themselves post-construction
                # cannot race; requiring annotations there is noise.
                continue
            yield Finding(
                code=self.code,
                path=summary.relpath,
                line=cls.lineno,
                col=cls.col,
                message=(
                    f"class '{cls.name}' is reachable from Session and mutates "
                    f"its own state but carries no ownership annotation "
                    f"(@shared_engine_state / @session_owned / "
                    f"@immutable_after_init)"
                ),
                source_line=cls.source_line,
            )


@register
class SharedMutableDefaultRule(ProjectRule):
    code = "DL104"
    name = "shared-mutable-class-or-module-state"
    rationale = (
        "a mutable object bound at class or module level is one object "
        "shared by every instance, session, and thread — hidden global "
        "state the ownership model cannot see."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for summary in project.summaries:
            if not summary.relpath.startswith(ENGINE_PREFIX):
                continue
            for cls in summary.classes:
                for name, line, col, source_line in cls.mutable_defaults:
                    yield Finding(
                        code=self.code,
                        path=summary.relpath,
                        line=line,
                        col=col,
                        message=(
                            f"class-level mutable default '{cls.name}.{name}' "
                            f"is shared by every instance across sessions"
                        ),
                        source_line=source_line,
                    )
            for name, line, col, source_line in summary.module_mutables:
                yield Finding(
                    code=self.code,
                    path=summary.relpath,
                    line=line,
                    col=col,
                    message=(
                        f"module-level mutable state '{name}' is shared by "
                        f"every session and thread in the process"
                    ),
                    source_line=source_line,
                )


__all__ = [
    "SharedStateSeamRule",
    "ImmutableAfterInitRule",
    "UnannotatedSharedClassRule",
    "SharedMutableDefaultRule",
]
