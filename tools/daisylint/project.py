"""daisylint whole-program analysis: symbol table, call graph, mutation map.

The DL001–DL009 rules are per-file: one AST, one linear pass.  The
ownership rules (DL101–DL104) need to see the whole program — which class
an annotated variable refers to in another module, which methods mutate
which attributes, what the ``Session`` object can reach.  This module is
that layer, split in two so it stays compatible with ``--jobs`` parallel
analysis and the on-disk result cache:

* :class:`ModuleSummary` — a *serializable* per-file extraction: the
  classes a file defines (with ownership decorators and their
  ``MUTATED_UNDER`` / ``MUTATING_ACCESSORS`` declaration tables parsed
  from literals), every attribute-mutation site (``self.x = …``,
  ``self.x.append(…)``, ``del self.x``, item assignment, and mutation
  through aliases returned by accessor methods), type references, call
  edges, and class/module-level mutable state.  Summaries are plain data:
  worker processes return them, the cache stores them.
* :class:`ProjectModel` — the merge: a project-wide symbol table (dotted
  name → class), import-aware reference resolution, a call graph, the
  per-class resolved mutation map, and ``Session``-reachability.  The
  DL1xx rules run over this model only — they never touch an AST.

Mutation *sites* are dotted (``repro.core.state.TableState.apply_updates``)
and seam declarations match on dotted-boundary suffix, the same convention
``repro.core.ownership`` documents for the runtime witness — the static
and dynamic checkers share one seam language by construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from tools.daisylint.rules import ENGINE_PREFIX, MUTATOR_METHODS

#: Decorator names recognized as ownership annotations.
OWNERSHIP_DECORATORS = (
    "shared_engine_state",
    "session_owned",
    "immutable_after_init",
)

#: Methods always treated as construction (mirrors ownership.DEFAULT_INIT_METHODS).
DEFAULT_INIT_METHODS = ("__init__", "__post_init__", "__new__")

#: Class-body declaration tables that are exempt from DL104 (they are the
#: ownership metadata itself) alongside dunders and annotations-only names.
_DECLARATION_TABLES = ("MUTATED_UNDER", "MUTATING_ACCESSORS")

#: Constructors whose call produces shared-mutable state when bound at
#: class or module level.
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
}


# ---------------------------------------------------------------------------
# Summaries (serializable)
# ---------------------------------------------------------------------------


@dataclass
class MutationRecord:
    """One attribute-mutation site, before project-level resolution.

    ``cls_ref`` is either an absolute dotted class name (for ``self``
    mutations — the enclosing class is known at extraction time) or a raw
    reference as written (for annotated parameters/locals), resolved later
    against the defining module's import table.  ``accessor`` is set for
    alias mutations (``obj.seen_for(r).add(t)``); the attribute is then
    looked up in the target class's ``MUTATING_ACCESSORS`` table.
    """

    cls_ref: str
    attr: str | None
    accessor: str | None
    site: str
    kind: str  # "assign" | "augassign" | "del" | "call" | "item" | "alias"
    relpath: str
    line: int
    col: int
    source_line: str
    is_self: bool

    def to_json(self) -> dict:
        return self.__dict__.copy()

    @classmethod
    def from_json(cls, data: dict) -> "MutationRecord":
        return cls(**data)


@dataclass
class FunctionSummary:
    """A module-level function: what it references and calls."""

    name: str
    refs: list[str] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"name": self.name, "refs": self.refs, "calls": self.calls}

    @classmethod
    def from_json(cls, data: dict) -> "FunctionSummary":
        return cls(**data)


@dataclass
class ClassSummary:
    """One class definition: ownership declarations, methods, refs."""

    name: str
    qualname: str
    lineno: int
    col: int
    source_line: str
    bases: list[str] = field(default_factory=list)
    ownership: str | None = None
    extra_init_methods: list[str] = field(default_factory=list)
    mutated_under: dict[str, list[str]] = field(default_factory=dict)
    mutating_accessors: dict[str, str] = field(default_factory=dict)
    methods: list[str] = field(default_factory=list)
    refs: list[str] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)
    #: [name, line, col, source_line] per class-level mutable default.
    mutable_defaults: list[list] = field(default_factory=list)

    @property
    def init_methods(self) -> tuple[str, ...]:
        return DEFAULT_INIT_METHODS + tuple(self.extra_init_methods)

    def to_json(self) -> dict:
        return self.__dict__.copy()

    @classmethod
    def from_json(cls, data: dict) -> "ClassSummary":
        return cls(**data)


@dataclass
class ModuleSummary:
    """The serializable whole-program-relevant extraction of one file."""

    relpath: str
    module: str
    imports: dict[str, str] = field(default_factory=dict)
    classes: list[ClassSummary] = field(default_factory=list)
    functions: list[FunctionSummary] = field(default_factory=list)
    mutations: list[MutationRecord] = field(default_factory=list)
    #: [name, line, col, source_line] per module-level mutable binding.
    module_mutables: list[list] = field(default_factory=list)
    #: line -> codes disabled there (mirrors ModuleInfo.suppressions).
    suppressions: dict[int, list[str]] = field(default_factory=dict)

    def suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line, [])
        return code in codes or "all" in codes

    def to_json(self) -> dict:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "imports": self.imports,
            "classes": [c.to_json() for c in self.classes],
            "functions": [f.to_json() for f in self.functions],
            "mutations": [m.to_json() for m in self.mutations],
            "module_mutables": self.module_mutables,
            "suppressions": {str(k): v for k, v in self.suppressions.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "ModuleSummary":
        return cls(
            relpath=data["relpath"],
            module=data["module"],
            imports=dict(data["imports"]),
            classes=[ClassSummary.from_json(c) for c in data["classes"]],
            functions=[FunctionSummary.from_json(f) for f in data["functions"]],
            mutations=[MutationRecord.from_json(m) for m in data["mutations"]],
            module_mutables=[list(m) for m in data["module_mutables"]],
            suppressions={int(k): list(v) for k, v in data["suppressions"].items()},
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path (src-layout aware)."""
    parts = relpath.split("/")
    if parts and parts[0] in ("src", "tests"):
        parts = parts[1:] if parts[0] == "src" else parts
    name = "/".join(parts)
    if name.endswith(".py"):
        name = name[: -len(".py")]
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_refs(node: ast.AST | None, out: list[str]) -> None:
    """Collect every class-like reference inside an annotation expression."""
    if node is None:
        return
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String (forward-reference) annotations: parse and recurse.
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return
        _annotation_refs(parsed.body, out)
        return
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            ref = _dotted(sub)
            if ref is not None:
                out.append(ref)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _literal(node: ast.AST) -> object | None:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError, TypeError):
        return None


def _peel(expr: ast.AST) -> tuple[str, list[tuple[str, str | None]]] | None:
    """Decompose a mutated-object expression into (root name, chain).

    The chain runs root-outward; each link is ``("attr", name)``,
    ``("sub", None)`` (subscript) or ``("acc", method)`` (call through a
    method — the accessor-alias case).  Returns None for expressions not
    rooted at a simple name.
    """
    chain: list[tuple[str, str | None]] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            chain.append(("attr", node.attr))
            node = node.value
        elif isinstance(node, ast.Subscript):
            chain.append(("sub", None))
            node = node.value
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            chain.append(("acc", node.func.attr))
            node = node.func.value
        else:
            break
    if not isinstance(node, ast.Name):
        return None
    chain.reverse()
    return node.id, chain


class _FunctionScanner:
    """Walks one function body collecting mutations, refs and call edges.

    The local environment maps variable names to what we know about them:
    ``("instance", ref)`` from annotations or visible construction,
    ``("alias", ref, accessor)`` for values returned by accessor methods.
    Nested functions share the enclosing environment (closures capture it).
    """

    def __init__(
        self,
        summary: "ModuleSummary",
        site: str,
        self_cls: str | None,
        refs: list[str],
        calls: list[str],
        lines: list[str],
    ) -> None:
        self.summary = summary
        self.site = site
        self.self_cls = self_cls  # absolute dotted name of the enclosing class
        self.refs = refs
        self.calls = calls
        self.lines = lines
        self.env: dict[str, tuple] = {}

    def _src(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def _record(
        self, cls_ref: str, attr: str | None, accessor: str | None,
        kind: str, node: ast.AST, is_self: bool,
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        self.summary.mutations.append(MutationRecord(
            cls_ref=cls_ref,
            attr=attr,
            accessor=accessor,
            site=self.site,
            kind=kind,
            relpath=self.summary.relpath,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            source_line=self._src(lineno),
            is_self=is_self,
        ))

    def _resolve_root(self, root: str) -> tuple[str, bool, str | None] | None:
        """(cls_ref, is_self, alias_accessor) for a variable, if typed."""
        if root == "self" and self.self_cls is not None:
            return self.self_cls, True, None
        bound = self.env.get(root)
        if bound is None:
            return None
        if bound[0] == "instance":
            return bound[1], False, None
        return bound[1], False, bound[2]

    def _mutation(self, expr: ast.AST, kind: str, node: ast.AST) -> None:
        """Record a mutation of ``expr`` (the object written through)."""
        peeled = _peel(expr)
        if peeled is None:
            return
        root, chain = peeled
        resolved = self._resolve_root(root)
        if resolved is None:
            return
        cls_ref, is_self, alias_accessor = resolved
        if not chain:
            # The variable itself is mutated (item assignment / mutator on
            # an alias): only meaningful when it aliases an attribute.
            if alias_accessor is not None:
                self._record(cls_ref, None, alias_accessor, "alias", node, is_self)
            return
        step, name = chain[0]
        if alias_accessor is not None:
            # Anything reached through an alias mutates the aliased attr.
            self._record(cls_ref, None, alias_accessor, "alias", node, is_self)
        elif step == "attr":
            self._record(cls_ref, name, None, kind, node, is_self)
        elif step == "acc":
            self._record(cls_ref, None, name, "alias", node, is_self)
        # ("sub",) at chain head on a plain instance var: v[k] = x mutates
        # the object itself, not an attribute of a tracked class — skip.

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        """Track local bindings that type later mutations."""
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, ast.Call):
            func = value.func
            dotted = _dotted(func)
            if dotted is not None:
                # Plausible construction: Foo() / pkg.Foo().  Whether it is
                # really a class is decided at resolution time.
                self.env[target.id] = ("instance", dotted)
                return
            if isinstance(func, ast.Attribute):
                base = _peel(func.value)
                if base is not None and not base[1]:
                    resolved = self._resolve_root(base[0])
                    if resolved is not None and resolved[2] is None:
                        # v = obj.accessor(...) — an alias into obj.
                        self.env[target.id] = ("alias", resolved[0], func.attr)
                        return
        self.env.pop(target.id, None)

    # -- statement walk ----------------------------------------------------

    def scan_body(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self.scan_stmt(stmt)

    def scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.scan_expr(stmt.value)
            for target in stmt.targets:
                self._scan_target(target, stmt)
            if len(stmt.targets) == 1:
                self._bind(stmt.targets[0], stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            _annotation_refs(stmt.annotation, self.refs)
            if stmt.value is not None:
                self.scan_expr(stmt.value)
                self._scan_target(stmt.target, stmt)
                self._bind(stmt.target, stmt.value)
            if isinstance(stmt.target, ast.Name):
                refs: list[str] = []
                _annotation_refs(stmt.annotation, refs)
                if refs:
                    self.env[stmt.target.id] = ("instance", refs[0])
        elif isinstance(stmt, ast.AugAssign):
            self.scan_expr(stmt.value)
            self._scan_target(stmt.target, stmt, kind="augassign")
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._mutation(target, "del", stmt)
        elif isinstance(stmt, ast.Expr):
            self.scan_expr(stmt.value)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self.scan_expr(value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.scan_expr(stmt.test)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.scan_expr(stmt.iter)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.scan_expr(item.context_expr)
            self.scan_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.scan_body(stmt.body)
            for handler in stmt.handlers:
                self.scan_body(handler.body)
            self.scan_body(stmt.orelse)
            self.scan_body(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Closures: same environment (they capture it), nested site.
            nested = _FunctionScanner(
                self.summary,
                f"{self.site}.<locals>.{stmt.name}",
                self.self_cls,
                self.refs,
                self.calls,
                self.lines,
            )
            nested.env = self.env  # shared: captured variables stay typed
            for arg in _all_args(stmt.args):
                _annotation_refs(arg.annotation, self.refs)
            nested.scan_body(stmt.body)

    def _scan_target(
        self, target: ast.expr, stmt: ast.stmt, kind: str = "assign"
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, stmt, kind=kind)
        elif isinstance(target, ast.Attribute):
            self._mutation(target, kind, stmt)
        elif isinstance(target, ast.Subscript):
            self._mutation(target, "item", stmt)

    # -- expression walk ---------------------------------------------------

    def scan_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is not None:
                self.calls.append(dotted)
                self.refs.append(dotted)
            elif isinstance(node.func, ast.Attribute):
                method = node.func.attr
                self.calls.append(method)
                if method in MUTATOR_METHODS:
                    self._mutation(node.func.value, "call", node)


def _all_args(args: ast.arguments) -> list[ast.arg]:
    out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg:
        out.append(args.vararg)
    if args.kwarg:
        out.append(args.kwarg)
    return out


def _decorator_ownership(node: ast.expr) -> tuple[str, list[str]] | None:
    """(kind, extra_init_methods) if the decorator is an ownership marker."""
    target = node
    extra: list[str] = []
    if isinstance(target, ast.Call):
        for keyword in target.keywords:
            if keyword.arg == "init_methods":
                value = _literal(keyword.value)
                if isinstance(value, (list, tuple)):
                    extra = [str(v) for v in value]
        target = target.func
    name = _dotted(target)
    if name is None:
        return None
    leaf = name.split(".")[-1]
    if leaf in OWNERSHIP_DECORATORS:
        return leaf, extra
    return None


def _method_env(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, scanner: _FunctionScanner
) -> None:
    """Seed the scanner environment from parameter annotations."""
    for arg in _all_args(fn.args):
        if arg.annotation is None:
            continue
        refs: list[str] = []
        _annotation_refs(arg.annotation, refs)
        scanner.refs.extend(refs)
        primary = [r for r in refs if r.split(".")[-1][:1].isupper()]
        if primary and arg.arg not in ("self", "cls"):
            scanner.env[arg.arg] = ("instance", primary[0])
    _annotation_refs(fn.returns, scanner.refs)


def summarize_module(
    tree: ast.Module,
    relpath: str,
    text: str,
    suppressions: dict[int, set[str]] | None = None,
) -> ModuleSummary:
    """Extract the whole-program-relevant facts from one parsed module."""
    module = module_name_for(relpath)
    lines = text.splitlines()
    summary = ModuleSummary(
        relpath=relpath,
        module=module,
        suppressions={
            line: sorted(codes) for line, codes in (suppressions or {}).items()
        },
    )
    package_parts = module.split(".")[:-1]

    def src(lineno: int) -> str:
        return lines[lineno - 1] if 1 <= lineno <= len(lines) else ""

    # Imports (anywhere in the file; later bindings win, like runtime).
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                summary.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - (node.level - 1)]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                summary.imports[bound] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )

    def scan_class(node: ast.ClassDef, qual_prefix: str) -> None:
        qualname = f"{qual_prefix}{node.name}"
        cls = ClassSummary(
            name=node.name,
            qualname=qualname,
            lineno=node.lineno,
            col=node.col_offset,
            source_line=src(node.lineno),
        )
        for base in node.bases:
            ref = _dotted(base)
            if ref is not None:
                cls.bases.append(ref)
                cls.refs.append(ref)
        for decorator in node.decorator_list:
            ownership = _decorator_ownership(decorator)
            if ownership is not None:
                cls.ownership, cls.extra_init_methods = ownership

        abs_name = f"{module}.{qualname}"
        for stmt in node.body:
            if isinstance(stmt, ast.ClassDef):
                scan_class(stmt, f"{qualname}.")
            elif isinstance(stmt, ast.AnnAssign):
                _annotation_refs(stmt.annotation, cls.refs)
                if (
                    stmt.value is not None
                    and isinstance(stmt.target, ast.Name)
                    and _is_mutable_value(stmt.value)
                    and not _dl104_exempt(stmt.target.id)
                ):
                    cls.mutable_defaults.append([
                        stmt.target.id, stmt.lineno, stmt.col_offset,
                        src(stmt.lineno),
                    ])
            elif isinstance(stmt, ast.Assign):
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                    name = stmt.targets[0].id
                    if name == "MUTATED_UNDER":
                        value = _literal(stmt.value)
                        if isinstance(value, dict):
                            cls.mutated_under = {
                                str(k): [str(s) for s in (
                                    v if isinstance(v, (list, tuple)) else (v,)
                                )]
                                for k, v in value.items()
                            }
                        continue
                    if name == "MUTATING_ACCESSORS":
                        value = _literal(stmt.value)
                        if isinstance(value, dict):
                            cls.mutating_accessors = {
                                str(k): str(v) for k, v in value.items()
                            }
                        continue
                    if _is_mutable_value(stmt.value) and not _dl104_exempt(name):
                        cls.mutable_defaults.append([
                            name, stmt.lineno, stmt.col_offset, src(stmt.lineno),
                        ])
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods.append(stmt.name)
                site = f"{module}.{qualname}.{stmt.name}"
                scanner = _FunctionScanner(
                    summary, site, abs_name, cls.refs, cls.calls, lines
                )
                _method_env(stmt, scanner)
                scanner.scan_body(stmt.body)
        summary.classes.append(cls)

    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            scan_class(stmt, "")
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionSummary(name=stmt.name)
            site = f"{module}.{stmt.name}"
            scanner = _FunctionScanner(
                summary, site, None, fn.refs, fn.calls, lines
            )
            _method_env(stmt, scanner)
            scanner.scan_body(stmt.body)
            summary.functions.append(fn)
        elif isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                if _is_mutable_value(stmt.value) and not _dl104_exempt(name):
                    summary.module_mutables.append([
                        name, stmt.lineno, stmt.col_offset, src(stmt.lineno),
                    ])
        elif isinstance(stmt, ast.AnnAssign):
            if (
                stmt.value is not None
                and isinstance(stmt.target, ast.Name)
                and _is_mutable_value(stmt.value)
                and not _dl104_exempt(stmt.target.id)
            ):
                summary.module_mutables.append([
                    stmt.target.id, stmt.lineno, stmt.col_offset, src(stmt.lineno),
                ])
    return summary


def _dl104_exempt(name: str) -> bool:
    return name.startswith("__") or name in _DECLARATION_TABLES


# ---------------------------------------------------------------------------
# The merged model
# ---------------------------------------------------------------------------


@dataclass
class ResolvedMutation:
    """A mutation record with its class and attribute pinned down."""

    cls_key: str
    attr: str
    record: MutationRecord


class ProjectModel:
    """The whole-program view: symbol table, call graph, mutation map."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.summaries: list[ModuleSummary] = sorted(
            summaries, key=lambda s: s.relpath
        )
        self.by_module: dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries
        }
        #: absolute dotted class name -> (summary, ClassSummary)
        self.classes: dict[str, tuple[ModuleSummary, ClassSummary]] = {}
        self._by_simple_name: dict[str, list[str]] = {}
        #: absolute dotted function name -> (summary, FunctionSummary)
        self.functions: dict[str, tuple[ModuleSummary, FunctionSummary]] = {}
        for summary in self.summaries:
            for cls in summary.classes:
                key = f"{summary.module}.{cls.qualname}"
                self.classes[key] = (summary, cls)
                self._by_simple_name.setdefault(cls.name, []).append(key)
            for fn in summary.functions:
                self.functions[f"{summary.module}.{fn.name}"] = (summary, fn)
        #: call graph: dotted caller site -> sorted callee refs (raw)
        self.call_graph: dict[str, list[str]] = {}
        for summary in self.summaries:
            for cls in summary.classes:
                key = f"{summary.module}.{cls.qualname}"
                self.call_graph[key] = sorted(set(cls.calls))
            for fn in summary.functions:
                self.call_graph[f"{summary.module}.{fn.name}"] = sorted(set(fn.calls))
        self.mutations: list[ResolvedMutation] = self._resolve_mutations()
        self._mutation_map: dict[str, list[ResolvedMutation]] = {}
        for mutation in self.mutations:
            self._mutation_map.setdefault(mutation.cls_key, []).append(mutation)

    # -- resolution --------------------------------------------------------

    def resolve_class(self, ref: str, summary: ModuleSummary) -> str | None:
        """Resolve a raw reference in ``summary``'s namespace to a class key."""
        if ref in self.classes:
            return ref
        head, _, rest = ref.partition(".")
        # Local class (possibly nested: Outer.Inner).
        local = f"{summary.module}.{ref}"
        if local in self.classes:
            return local
        # Through the import table.
        target = summary.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
            if dotted in self.classes:
                return dotted
            # Re-export: ``from repro.core import TableState`` binds a name
            # whose import target is not the defining module.  Fall through
            # to the unique-simple-name match below.
        leaf = ref.split(".")[-1]
        candidates = self._by_simple_name.get(leaf, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_function(self, ref: str, summary: ModuleSummary) -> str | None:
        if ref in self.functions:
            return ref
        local = f"{summary.module}.{ref}"
        if local in self.functions:
            return local
        head, _, rest = ref.partition(".")
        target = summary.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
            if dotted in self.functions:
                return dotted
        return None

    def class_summary(self, key: str) -> ClassSummary:
        return self.classes[key][1]

    def base_chain(self, key: str) -> list[str]:
        """The class plus its resolved bases, breadth-first, cycle-safe."""
        out: list[str] = []
        queue = [key]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            out.append(current)
            summary, cls = self.classes[current]
            for base in cls.bases:
                resolved = self.resolve_class(base, summary)
                if resolved is not None:
                    queue.append(resolved)
        return out

    def ownership_of(self, key: str) -> tuple[str, ClassSummary] | None:
        """(kind, declaring ClassSummary) from the class or nearest base."""
        for candidate in self.base_chain(key):
            cls = self.class_summary(candidate)
            if cls.ownership is not None:
                return cls.ownership, cls
        return None

    def _resolve_mutations(self) -> list[ResolvedMutation]:
        out: list[ResolvedMutation] = []
        for summary in self.summaries:
            for record in summary.mutations:
                key = (
                    record.cls_ref
                    if record.is_self and record.cls_ref in self.classes
                    else self.resolve_class(record.cls_ref, summary)
                )
                if key is None:
                    continue
                attr = record.attr
                if attr is None and record.accessor is not None:
                    # Alias mutation: meaningful only when the accessor is
                    # declared (on the class or an annotated base).
                    attr = None
                    for candidate in self.base_chain(key):
                        accessors = self.class_summary(candidate).mutating_accessors
                        if record.accessor in accessors:
                            attr = accessors[record.accessor]
                            break
                    if attr is None:
                        continue
                if attr is None:
                    continue
                out.append(ResolvedMutation(cls_key=key, attr=attr, record=record))
        return out

    def mutations_of(self, key: str) -> list[ResolvedMutation]:
        """Every resolved mutation of ``key``'s attributes, project-wide.

        Includes mutations recorded against base classes (a seam declared
        on ``ExecutorPool`` governs ``ThreadPool`` writes and vice versa).
        """
        chain = set(self.base_chain(key))
        out = [m for c in chain for m in self._mutation_map.get(c, [])]
        out.sort(key=lambda m: (m.record.relpath, m.record.line, m.record.col))
        return out

    def post_init_mutations(self, key: str) -> list[ResolvedMutation]:
        cls = self.class_summary(key)
        init_methods = set(cls.init_methods)
        out = []
        for mutation in self._mutation_map.get(key, []):
            leaf = mutation.record.site.split(".")[-1]
            if mutation.record.is_self and leaf in init_methods:
                continue
            out.append(mutation)
        return out

    # -- reachability ------------------------------------------------------

    def session_reachable(self) -> set[str]:
        """Class keys reachable from ``Session`` via type refs and calls."""
        roots = [
            key for key in self.classes
            if self.class_summary(key).name == "Session"
            and self.classes[key][0].relpath.startswith(ENGINE_PREFIX)
        ]
        reached: set[str] = set()
        fn_memo: dict[str, set[str]] = {}

        def function_refs(fn_key: str, stack: set[str]) -> set[str]:
            if fn_key in fn_memo:
                return fn_memo[fn_key]
            if fn_key in stack:
                return set()
            stack.add(fn_key)
            summary, fn = self.functions[fn_key]
            refs: set[str] = set()
            for ref in fn.refs:
                resolved = self.resolve_class(ref, summary)
                if resolved is not None:
                    refs.add(resolved)
            for call in fn.calls:
                callee = self.resolve_function(call, summary)
                if callee is not None:
                    refs |= function_refs(callee, stack)
            stack.discard(fn_key)
            fn_memo[fn_key] = refs
            return refs

        queue = list(roots)
        while queue:
            key = queue.pop()
            if key in reached or key not in self.classes:
                continue
            reached.add(key)
            summary, cls = self.classes[key]
            neighbors: set[str] = set()
            for ref in cls.refs:
                resolved = self.resolve_class(ref, summary)
                if resolved is not None:
                    neighbors.add(resolved)
            for call in cls.calls:
                callee = self.resolve_function(call, summary)
                if callee is not None:
                    neighbors |= function_refs(callee, set())
            for base in cls.bases:
                resolved = self.resolve_class(base, summary)
                if resolved is not None:
                    neighbors.add(resolved)
            queue.extend(neighbors - reached)
        return reached

    # -- reporting ---------------------------------------------------------

    def mutation_report(self) -> dict:
        """Per-class attribute-mutation map (the annotation-authoring aid)."""
        report: dict[str, dict] = {}
        for key in sorted(self._mutation_map):
            cls = self.class_summary(key)
            attrs: dict[str, list[str]] = {}
            for mutation in self._mutation_map[key]:
                site = mutation.record.site
                attrs.setdefault(mutation.attr, [])
                if site not in attrs[mutation.attr]:
                    attrs[mutation.attr].append(site)
            report[key] = {
                "ownership": cls.ownership,
                "attrs": {a: sorted(s) for a, s in sorted(attrs.items())},
            }
        return report


# ---------------------------------------------------------------------------
# Seam matching (the shared convention — see repro/core/ownership.py)
# ---------------------------------------------------------------------------


def site_candidates(site: str) -> Iterator[str]:
    """The site plus each enclosing site (peeling ``.<locals>.fn`` layers).

    A closure inside a seam method inherits the seam — the runtime witness
    sees the seam frame on the stack; the static check peels the nesting.
    """
    yield site
    while ".<locals>." in site:
        site = site.rsplit(".<locals>.", 1)[0]
        yield site


def seam_matches(seam: str, site: str) -> bool:
    if not seam:
        return False
    for candidate in site_candidates(site):
        if candidate == seam or candidate.endswith("." + seam):
            return True
    return False


def site_in_seams(
    site: str, seams: Iterable[str], init_methods: Iterable[str], class_name: str
) -> bool:
    for candidate in site_candidates(site):
        leaf = candidate.rsplit(".", 1)[-1]
        if leaf in init_methods and f".{class_name}." in f".{candidate}.":
            return True
    return any(seam_matches(seam, site) for seam in seams)


__all__ = [
    "OWNERSHIP_DECORATORS",
    "DEFAULT_INIT_METHODS",
    "MutationRecord",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "ResolvedMutation",
    "ProjectModel",
    "module_name_for",
    "summarize_module",
    "site_candidates",
    "seam_matches",
    "site_in_seams",
]
