"""The daisylint rule suite: this repo's engine invariants as AST checks.

Each rule encodes one invariant the parity tests enforce dynamically (see
``docs/static-analysis.md`` for the catalog with rationale):

=======  ==============================================================
DL001    set-iteration determinism in result-producing modules
DL002    fork-unsafe closure capture in pool fan-out sites
DL003    wall-clock reads outside the timing module / benchmarks
DL004    unseeded randomness in the engine
DL005    bare / overbroad ``except``
DL006    mutable default arguments
DL007    pass entry points called without a WorkCounter threaded through
DL008    kernel-oracle parity registry completeness in kernels.py
DL009    raw file / sqlite / mmap access outside ``repro/storage``
=======  ==============================================================

Rules are *syntactic* (no type inference): they flag what they can prove
from one module's AST and lean on per-line ``# daisylint:
disable=CODE`` suppressions for the rare intentional exception.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.daisylint.core import Finding, ModuleInfo, Rule, register

#: Modules whose outputs feed query results / repairs — any nondeterministic
#: iteration order here can leak into violations, repairs, or reports and
#: break the serial/parallel and rowstore/columnar parity invariants.
RESULT_PACKAGES = (
    "src/repro/detection/",
    "src/repro/repair/",
    "src/repro/relation/",
    "src/repro/query/",
    "src/repro/parallel/",
)

#: All engine source (rules DL005/DL006 apply repo-engine-wide).
ENGINE_PREFIX = "src/repro/"

#: The one module allowed to read wall clocks (plus benchmarks/).
CLOCK_ALLOWED = ("src/repro/metrics/timing.py",)

#: Call sinks that fan callables out to pools / forked workers.
POOL_SINK_NAMES = {"parallel_relax_fd", "check_cells"}
POOL_SINK_ATTRS = {"run", "submit", "map"}

#: Functions whose signature threads a WorkCounter; engine call sites must
#: pass ``counter=`` explicitly so no pass escapes work accounting.
COUNTER_REQUIRED = {
    "relax_fd",
    "compute_fd_fixes",
    "compute_dc_fixes",
    "apply_fd_delta",
    "apply_dc_delta",
}

#: Call sites allowed to omit ``counter=`` (the deliberate exceptions).
COUNTER_ALLOWLIST: set[tuple[str, str]] = set()

#: Order-insensitive consumers: iterating a set *inside* these calls cannot
#: leak order into results.
ORDER_INSENSITIVE_CALLS = {
    "sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
    "Counter",
}

#: Mutating methods on the builtin containers (receiver mutated in place).
MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
}


def _in_result_packages(relpath: str) -> bool:
    return any(relpath.startswith(p) for p in RESULT_PACKAGES)


def _call_name(node: ast.Call) -> str | None:
    """Terminal name of the called object (``f`` or ``obj.f`` -> ``f``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ---------------------------------------------------------------------------
# Set-expression inference (shared by DL001)
# ---------------------------------------------------------------------------

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _ScopeSets:
    """Which local names are provably sets in one function/module scope.

    A name qualifies only when *every* binding in the scope is a syntactic
    set expression (set display, set comprehension, ``set()`` /
    ``frozenset()`` call, set-operator combination of sets, or an
    annotated ``set[...]``); one unknown binding disqualifies it — the
    rule prefers missed findings over false ones.
    """

    def __init__(self, scope: ast.AST):
        self.set_names: set[str] = set()
        unknown: set[str] = set()
        candidates: set[str] = set()
        for node in _walk_scope(scope):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                if _annotation_is_set(node.annotation):
                    if isinstance(node.target, ast.Name):
                        candidates.add(node.target.id)
                    continue
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                # x |= … keeps a set a set; any other augmented op makes
                # the name unknown.
                if not isinstance(node.op, _SET_BINOPS):
                    for name in _target_names(node.target):
                        unknown.add(name)
                continue
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], None
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [i.optional_vars for i in node.items if i.optional_vars]
                value = None
            elif isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef):
                unknown.add(node.name)
                continue
            else:
                continue
            for target in targets:
                for name in _target_names(target):
                    if value is not None and self._is_set_expr(value, candidates):
                        candidates.add(name)
                    else:
                        unknown.add(name)
        # Parameters are unknown bindings.
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for arg in _all_args(scope.args):
                unknown.add(arg.arg)
        self.set_names = candidates - unknown

    def _is_set_expr(self, node: ast.expr, known: set[str]) -> bool:
        return _is_set_expr(node, known)

    def is_set(self, node: ast.expr) -> bool:
        return _is_set_expr(node, self.set_names)


def _is_set_expr(node: ast.expr, known_set_names: set[str]) -> bool:
    """Syntactic "this expression evaluates to a set/frozenset" test."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, known_set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left, known_set_names) or _is_set_expr(
            node.right, known_set_names
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, known_set_names) and _is_set_expr(
            node.orelse, known_set_names
        )
    if isinstance(node, ast.Name):
        return node.id in known_set_names
    return False


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in {"set", "frozenset"}
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith(("set[", "frozenset[", "set", "frozenset"))
    return False


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _all_args(args: ast.arguments) -> list[ast.arg]:
    out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg:
        out.append(args.vararg)
    if args.kwarg:
        out.append(args.kwarg)
    return out


def _enclosing_scopes(module: ModuleInfo, node: ast.AST) -> list[ast.AST]:
    """Innermost-first chain of function scopes containing ``node``."""
    out: list[ast.AST] = []
    cur: ast.AST | None = module.parent(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            out.append(cur)
        cur = module.parent(cur)
    return out


# ---------------------------------------------------------------------------
# DL001
# ---------------------------------------------------------------------------


@register
class SetIterationRule(Rule):
    code = "DL001"
    name = "set-iteration-determinism"
    rationale = (
        "Iterating a set without sorted() yields a hash-seed-dependent order; "
        "in result-producing modules that order leaks into violations, "
        "repairs, and parity-critical merges."
    )

    def applies(self, relpath: str) -> bool:
        return _in_result_packages(relpath)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        scope_cache: dict[int, _ScopeSets] = {}

        def sets_for(node: ast.AST) -> _ScopeSets:
            scopes = _enclosing_scopes(module, node)
            scope: ast.AST = scopes[0] if scopes else module.tree
            key = id(scope)
            if key not in scope_cache:
                scope_cache[key] = _ScopeSets(scope)
            return scope_cache[key]

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if sets_for(node).is_set(node.iter):
                    yield module.finding(
                        self.code,
                        node.iter,
                        "iteration over a set has hash-seed-dependent order; "
                        "wrap in sorted() or restructure",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                consumer = module.parent(node)
                if (
                    isinstance(consumer, ast.Call)
                    and isinstance(consumer.func, ast.Name)
                    and consumer.func.id in ORDER_INSENSITIVE_CALLS
                ):
                    continue
                if isinstance(node, (ast.SetComp, ast.DictComp)):
                    # The comprehension's own result is unordered-by-content
                    # (set) or keyed (dict); iterating a set *into* one is
                    # fine unless order-dependent work happens inside —
                    # which a dict comp's insertion order is. Only the
                    # first generator's order is observable for dicts.
                    if isinstance(node, ast.SetComp):
                        continue
                sets = sets_for(node)
                for gen in node.generators:
                    if sets.is_set(gen.iter):
                        yield module.finding(
                            self.code,
                            gen.iter,
                            "comprehension over a set has hash-seed-dependent "
                            "order; wrap in sorted()",
                        )
            elif isinstance(node, ast.Call):
                fname = node.func.id if isinstance(node.func, ast.Name) else None
                if fname in {"list", "tuple", "enumerate", "iter"} and node.args:
                    if sets_for(node).is_set(node.args[0]):
                        yield module.finding(
                            self.code,
                            node.args[0],
                            f"{fname}() over a set materializes a "
                            "hash-seed-dependent order; use sorted()",
                        )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and sets_for(node).is_set(node.args[0])
                ):
                    yield module.finding(
                        self.code,
                        node.args[0],
                        "str.join over a set renders a hash-seed-dependent "
                        "order; use sorted()",
                    )


# ---------------------------------------------------------------------------
# DL002
# ---------------------------------------------------------------------------


def _free_names(fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names read inside ``fn`` that are not bound inside ``fn``."""
    bound = {a.arg for a in _all_args(fn.args)}
    loads: set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
                else:
                    bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
            elif isinstance(node, ast.comprehension):
                bound.update(_target_names(node.target))
    return loads - bound


def _mutations_after(
    scope: ast.AST, names: set[str], after_line: int
) -> list[tuple[str, ast.AST]]:
    """Rebinding / in-place mutation of ``names`` in ``scope`` past a line.

    Counts direct rebinds (``x = …``, ``x += …``, ``del x``), mutator
    method calls on the bare name (``x.append(…)``), and subscript stores
    (``x[k] = …``) — the capture-then-mutate hazards a forked or threaded
    task can observe.
    """
    hits: list[tuple[str, ast.AST]] = []
    for node in _walk_scope(scope):
        line = getattr(node, "lineno", 0)
        if line <= after_line:
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in names:
                    hits.append((target.id, node))
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    hits.append((target.value.id, node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in names:
                    hits.append((target.id, node))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in names
            ):
                hits.append((func.value.id, node))
    return hits


@register
class ForkUnsafeClosureRule(Rule):
    code = "DL002"
    name = "fork-unsafe-closure-capture"
    rationale = (
        "Tasks handed to an ExecutorPool read their free variables at call "
        "time; capturing a loop variable (late binding) or a local mutated "
        "after capture makes thread/fork results diverge from serial."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(ENGINE_PREFIX)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for call in ast.walk(module.tree):
            if not isinstance(call, ast.Call):
                continue
            fname = _call_name(call)
            is_sink = fname in POOL_SINK_NAMES or (
                isinstance(call.func, ast.Attribute) and fname in POOL_SINK_ATTRS
            )
            if not is_sink:
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                yield from self._check_task_arg(module, call, arg)

    def _check_task_arg(
        self, module: ModuleInfo, sink: ast.Call, arg: ast.expr
    ) -> Iterator[Finding]:
        # Case 1: comprehension of callables — late-binding capture of the
        # comprehension target is the classic "every task sees the last
        # cell" bug.
        if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
            elt = arg.elt
            if isinstance(elt, ast.Lambda):
                targets: set[str] = set()
                for gen in arg.generators:
                    targets.update(_target_names(gen.target))
                captured = _free_names(elt) & targets
                for name in sorted(captured):
                    yield module.finding(
                        self.code,
                        elt,
                        f"task lambda captures loop variable {name!r} by "
                        "reference (late binding): every task sees its final "
                        "value; bind it via a factory function or default arg",
                    )
            return
        # Case 2: a lambda / local function passed directly.
        fn = self._resolve_callable(module, arg)
        if fn is None:
            return
        scopes = _enclosing_scopes(module, fn)
        if not scopes:
            return
        scope = scopes[0]
        free = _free_names(fn)
        if not free:
            return
        for name, node in _mutations_after(scope, free, fn.lineno):
            yield module.finding(
                self.code,
                node,
                f"captured variable {name!r} is mutated after the task "
                f"closure (line {fn.lineno}) captures it; snapshot it before "
                "capture (fork/thread tasks must see frozen state)",
            )

    def _resolve_callable(
        self, module: ModuleInfo, arg: ast.expr
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | None:
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            # A local `def` — or a lambda bound by assignment — in an
            # enclosing function scope.
            for scope in _enclosing_scopes(module, arg):
                for node in _walk_scope(scope):
                    if (
                        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node.name == arg.id
                    ):
                        return node
                    if (
                        isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Lambda)
                        and any(
                            isinstance(t, ast.Name) and t.id == arg.id
                            for t in node.targets
                        )
                    ):
                        return node.value
        return None


# ---------------------------------------------------------------------------
# DL003
# ---------------------------------------------------------------------------

_CLOCK_TIME_FUNCS = {
    "time", "perf_counter", "monotonic", "process_time",
    "time_ns", "perf_counter_ns", "monotonic_ns", "process_time_ns",
}
_CLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register
class WallClockRule(Rule):
    code = "DL003"
    name = "wall-clock-in-engine"
    rationale = (
        "Engine results and work accounting must be time-independent; all "
        "timing flows through metrics/timing.py so parity tests can reason "
        "about work units, not seconds."
    )

    def applies(self, relpath: str) -> bool:
        return (
            relpath.startswith("src/")
            and relpath not in CLOCK_ALLOWED
            and not relpath.startswith("benchmarks/")
        )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        time_aliases, dt_aliases, from_imports = _clock_imports(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id in time_aliases and node.attr in _CLOCK_TIME_FUNCS:
                        yield self._flag(module, node, f"time.{node.attr}")
                    elif base.id in dt_aliases and node.attr in _CLOCK_DATETIME_FUNCS:
                        yield self._flag(module, node, f"datetime.{node.attr}")
                elif (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in dt_aliases
                    and node.attr in _CLOCK_DATETIME_FUNCS
                ):
                    yield self._flag(module, node, f"datetime.datetime.{node.attr}")
            elif isinstance(node, ast.Name) and node.id in from_imports:
                if isinstance(node.ctx, ast.Load):
                    yield self._flag(module, node, from_imports[node.id])

    def _flag(self, module: ModuleInfo, node: ast.AST, what: str) -> Finding:
        return module.finding(
            self.code,
            node,
            f"wall-clock read ({what}) outside metrics/timing.py; route "
            "through repro.metrics.timing",
        )


def _clock_imports(tree: ast.Module) -> tuple[set[str], set[str], dict[str, str]]:
    """(aliases of ``time``, aliases of ``datetime``, from-imported clock names)."""
    time_aliases: set[str] = set()
    dt_aliases: set[str] = set()
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or "time")
                elif alias.name == "datetime":
                    dt_aliases.add(alias.asname or "datetime")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_TIME_FUNCS:
                        from_imports[alias.asname or alias.name] = f"time.{alias.name}"
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in {"datetime", "date"}:
                        dt_aliases.add(alias.asname or alias.name)
    return time_aliases, dt_aliases, from_imports


# ---------------------------------------------------------------------------
# DL004
# ---------------------------------------------------------------------------


@register
class UnseededRandomRule(Rule):
    code = "DL004"
    name = "unseeded-randomness"
    rationale = (
        "Every stochastic path (error injection, workload generation) must "
        "take an explicit seed so runs are reproducible; the global random "
        "module is process-wide mutable state."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(ENGINE_PREFIX)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases: set[str] = set()
        from_names: set[str] = set()
        np_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
                    elif alias.name == "numpy":
                        np_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in {"Random", "SystemRandom"}:
                        from_names.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                base = func.value.id
                if base in aliases:
                    if func.attr == "Random":
                        if not node.args and not node.keywords:
                            yield module.finding(
                                self.code, node,
                                "random.Random() without a seed; pass an "
                                "explicit seed",
                            )
                    elif func.attr != "SystemRandom":
                        yield module.finding(
                            self.code, node,
                            f"module-level random.{func.attr}() uses the "
                            "shared unseeded global RNG; use random.Random(seed)",
                        )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in np_aliases
                and func.value.attr == "random"
            ):
                yield module.finding(
                    self.code, node,
                    f"numpy.random.{func.attr}() uses the global NumPy RNG; "
                    "use numpy.random.Generator with an explicit seed",
                )
            elif isinstance(func, ast.Name) and func.id in from_names:
                yield module.finding(
                    self.code, node,
                    f"{func.id}() from the random module uses the shared "
                    "unseeded global RNG; use random.Random(seed)",
                )


# ---------------------------------------------------------------------------
# DL005
# ---------------------------------------------------------------------------


@register
class OverbroadExceptRule(Rule):
    code = "DL005"
    name = "overbroad-except"
    rationale = (
        "A bare or Exception-wide handler can swallow engine invariant "
        "violations (parity assertion errors, counter corruption) and turn "
        "them into silent wrong answers."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(ENGINE_PREFIX)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self.code, node,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exceptions you expect",
                )
                continue
            if not _is_broad_type(node.type):
                continue
            if _handler_reraises(node):
                continue
            try_node = module.parent(node)
            if isinstance(try_node, ast.Try) and _try_is_import_guard(try_node):
                continue
            yield module.finding(
                self.code, node,
                "except Exception without re-raise can hide invariant "
                "violations; narrow the type or re-raise",
            )


def _is_broad_type(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in {"Exception", "BaseException"}
    if isinstance(node, ast.Tuple):
        return any(_is_broad_type(elt) for elt in node.elts)
    return False


def _handler_reraises(node: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(node))


def _try_is_import_guard(node: ast.Try) -> bool:
    """Optional-dependency idiom: the try body performs an import."""
    return any(isinstance(stmt, (ast.Import, ast.ImportFrom)) for stmt in node.body)


# ---------------------------------------------------------------------------
# DL006
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict",
}


@register
class MutableDefaultRule(Rule):
    code = "DL006"
    name = "mutable-default-argument"
    rationale = (
        "A mutable default is shared across calls — per-query state bleeding "
        "across sessions is exactly the class of bug the fork-safety "
        "invariant exists to prevent."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(ENGINE_PREFIX)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield module.finding(
                        self.code, default,
                        "mutable default argument is shared across calls; "
                        "use None and construct inside",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )


# ---------------------------------------------------------------------------
# DL007
# ---------------------------------------------------------------------------


@register
class CounterBypassRule(Rule):
    code = "DL007"
    name = "workcounter-bypass"
    rationale = (
        "Every detection/repair pass charges work units to a WorkCounter; a "
        "call site that drops the counter makes the pass invisible to the "
        "cost model and breaks serial/parallel work-unit parity."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(ENGINE_PREFIX)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = _call_name(node)
            if fname not in COUNTER_REQUIRED:
                continue
            if any(kw.arg == "counter" for kw in node.keywords):
                continue
            if any(kw.arg is None for kw in node.keywords):  # **kwargs passthrough
                continue
            if (module.relpath, fname) in COUNTER_ALLOWLIST:
                continue
            yield module.finding(
                self.code, node,
                f"{fname}() called without counter=; thread the pass's "
                "WorkCounter through so work accounting stays complete",
            )


# ---------------------------------------------------------------------------
# DL008
# ---------------------------------------------------------------------------

KERNELS_MODULE = "src/repro/relation/kernels.py"
REGISTRY_NAME = "KERNEL_ORACLES"


@register
class KernelOracleRegistryRule(Rule):
    code = "DL008"
    name = "kernel-oracle-registry"
    rationale = (
        "Every NumPy kernel must be byte-identical to a pure-Python oracle; "
        "the module-level KERNEL_ORACLES registry names each kernel's "
        "oracle so the parity obligation is visible and testable."
    )

    def applies(self, relpath: str) -> bool:
        return relpath == KERNELS_MODULE or relpath.endswith("/kernels.py")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        public_fns: dict[str, ast.FunctionDef] = {}
        registry: ast.Dict | None = None
        registry_node: ast.AST | None = None
        for stmt in module.tree.body:
            if isinstance(stmt, ast.FunctionDef) and not stmt.name.startswith("_"):
                public_fns[stmt.name] = stmt
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == REGISTRY_NAME:
                        registry_node = stmt
                        if isinstance(stmt.value, ast.Dict):
                            registry = stmt.value
        if registry is None:
            yield module.finding(
                self.code,
                registry_node or module.tree.body[0] if module.tree.body else module.tree,
                f"kernels module must define a module-level {REGISTRY_NAME} "
                "dict literal mapping every public function to its "
                "pure-Python oracle",
            )
            return
        entries: dict[str, ast.expr] = {}
        for key, value in zip(registry.keys, registry.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                entries[key.value] = value
            else:
                yield module.finding(
                    self.code, key or registry,
                    f"{REGISTRY_NAME} keys must be string literals",
                )
        for name, fn in sorted(public_fns.items()):
            if name not in entries:
                yield module.finding(
                    self.code, fn,
                    f"public kernel {name}() missing from {REGISTRY_NAME}; "
                    "name its pure-Python oracle",
                )
        for name, value in sorted(entries.items()):
            if name not in public_fns:
                yield module.finding(
                    self.code, value,
                    f"{REGISTRY_NAME} entry {name!r} has no matching public "
                    "function in kernels.py",
                )
            elif not (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value.strip()
            ):
                yield module.finding(
                    self.code, value,
                    f"{REGISTRY_NAME}[{name!r}] must be a non-empty string "
                    "naming the oracle",
                )


# ---------------------------------------------------------------------------
# DL009
# ---------------------------------------------------------------------------

#: The one package allowed to touch files, SQLite, and mmap directly.
STORAGE_PREFIX = "src/repro/storage/"

#: Modules whose *import* already signals raw storage access.
_STORAGE_MODULES = {"sqlite3", "mmap"}


@register
class RawStorageAccessRule(Rule):
    code = "DL009"
    name = "raw-storage-access-outside-storage"
    rationale = (
        "All spill files, SQLite mirrors, and memory maps are owned by "
        "repro/storage so Session.close()/Daisy.close() can account for "
        "every OS handle; an open()/sqlite3.connect()/mmap elsewhere in "
        "the engine escapes the leak-check and the spill lifecycle."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(ENGINE_PREFIX) and not relpath.startswith(
            STORAGE_PREFIX
        )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        storage_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _STORAGE_MODULES:
                        storage_aliases.add(alias.asname or alias.name)
                        yield module.finding(
                            self.code, node,
                            f"import of {alias.name!r} outside repro/storage; "
                            "route raw storage access through the storage "
                            "package",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module in _STORAGE_MODULES:
                    yield module.finding(
                        self.code, node,
                        f"from-import of {node.module!r} outside "
                        "repro/storage; route raw storage access through "
                        "the storage package",
                    )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield module.finding(
                    self.code, node,
                    "open() outside repro/storage; engine file handles must "
                    "live behind the storage package's lifecycle",
                )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in storage_aliases
                and func.attr in ("connect", "mmap")
            ):
                yield module.finding(
                    self.code, node,
                    f"{func.value.id}.{func.attr}() outside repro/storage",
                )


__all__ = [
    "RESULT_PACKAGES",
    "ENGINE_PREFIX",
    "STORAGE_PREFIX",
    "COUNTER_REQUIRED",
    "SetIterationRule",
    "ForkUnsafeClosureRule",
    "WallClockRule",
    "UnseededRandomRule",
    "OverbroadExceptRule",
    "MutableDefaultRule",
    "CounterBypassRule",
    "KernelOracleRegistryRule",
    "RawStorageAccessRule",
]
